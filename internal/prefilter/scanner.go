package prefilter

import (
	"fmt"

	"repro/internal/simdscan"
)

// Tier names the candidate-scanner representation a Set compiled to,
// exported on /metrics as the rap_prefilter_tier label.
type Tier int

const (
	// TierMemchr is the single-byte skip loop (bytes.IndexByte).
	TierMemchr Tier = iota
	// TierByteTable is the 256-entry membership table over single bytes.
	TierByteTable
	// TierTeddy is the word-at-a-time fingerprint scanner for multi-byte
	// literal sets up to simdscan.TeddyMaxLiterals.
	TierTeddy
	// TierAC is the dense Aho-Corasick DFA fallback.
	TierAC
)

func (t Tier) String() string {
	switch t {
	case TierMemchr:
		return "memchr"
	case TierByteTable:
		return "bytetable"
	case TierTeddy:
		return "teddy"
	default:
		return "ac"
	}
}

// Set is the compiled candidate scanner for the union of every
// prefiltered pattern's mandatory literals. It is immutable after
// NewSet and shared read-only by all streams, like the Machine it gates.
//
// Four representations, picked at compile time:
//   - one distinct single byte  -> memchr-style skip loop (bytes.IndexByte)
//   - all literals single bytes -> 256-entry membership table
//   - 1–32 multi-byte literals  -> Teddy fingerprint scanner (simdscan)
//   - anything else             -> dense Aho-Corasick DFA over the trie
type Set struct {
	window int // longest prefiltered pattern length, in states/bytes
	tier   Tier

	single    byte // memchr fast path when hasSingle
	hasSingle bool

	oneByte  bool // all literals are single bytes: table loop
	byteMask [256]bool

	// Teddy fingerprint scanner (TierTeddy). Its history requirement,
	// MaxLen-1 bytes, is always met by the stream's window-sized history
	// because every literal fits the window.
	teddy *simdscan.Teddy

	// Aho-Corasick DFA: next[s][b] is the successor state, out[s] reports
	// a literal ending at s (directly or along the fail chain).
	next [][256]int32
	out  []bool
}

// NewSet compiles the candidate scanner. window is the longest
// prefiltered pattern length in bytes (>= 1); every literal must be
// non-empty and no longer than window.
func NewSet(lits [][]byte, window int) (*Set, error) {
	if len(lits) == 0 {
		return nil, fmt.Errorf("prefilter: empty literal set")
	}
	if window < 1 {
		return nil, fmt.Errorf("prefilter: window %d < 1", window)
	}
	s := &Set{window: window}
	allOne := true
	for _, l := range lits {
		if len(l) == 0 {
			return nil, fmt.Errorf("prefilter: empty literal")
		}
		if len(l) > window {
			return nil, fmt.Errorf("prefilter: literal %q longer than window %d", l, window)
		}
		if len(l) != 1 {
			allOne = false
		}
	}
	if allOne {
		s.oneByte = true
		distinct := 0
		for _, l := range lits {
			if !s.byteMask[l[0]] {
				s.byteMask[l[0]] = true
				distinct++
				s.single = l[0]
			}
		}
		s.hasSingle = distinct == 1
		s.tier = TierByteTable
		if s.hasSingle {
			s.tier = TierMemchr
		}
		return s, nil
	}
	// Multi-byte sets small enough for the fingerprint tier scan on the
	// word-at-a-time Teddy kernel; NewTeddy rejects sets with single-byte
	// literals or too many distinct literals, which fall through to AC.
	if t, err := simdscan.NewTeddy(lits); err == nil {
		s.teddy = t
		s.tier = TierTeddy
		return s, nil
	}
	s.buildAC(lits)
	s.tier = TierAC
	return s, nil
}

// NewSetAC compiles the literal set straight to the Aho-Corasick tier,
// bypassing tier selection. It is the baseline the fingerprint tier is
// benchmarked and differentially fuzzed against; production callers use
// NewSet.
func NewSetAC(lits [][]byte, window int) (*Set, error) {
	if len(lits) == 0 {
		return nil, fmt.Errorf("prefilter: empty literal set")
	}
	if window < 1 {
		return nil, fmt.Errorf("prefilter: window %d < 1", window)
	}
	for _, l := range lits {
		if len(l) == 0 || len(l) > window {
			return nil, fmt.Errorf("prefilter: literal %q does not fit window %d", l, window)
		}
	}
	s := &Set{window: window, tier: TierAC}
	s.buildAC(lits)
	return s, nil
}

// Window returns the window radius the set was compiled for.
func (s *Set) Window() int { return s.window }

// Tier returns the candidate-scanner representation the set compiled to.
func (s *Set) Tier() Tier { return s.tier }

// buildAC constructs the goto trie, resolves fail links breadth-first and
// flattens everything into a dense DFA (next fully resolved, out folded
// along fail chains).
func (s *Set) buildAC(lits [][]byte) {
	type node struct {
		child [256]int32 // 0 = absent (state 0 is the root)
		out   bool
		fail  int32
	}
	nodes := []node{{}}
	for _, l := range lits {
		cur := int32(0)
		for _, b := range l {
			nxt := nodes[cur].child[b]
			if nxt == 0 {
				nodes = append(nodes, node{})
				nxt = int32(len(nodes) - 1)
				nodes[cur].child[b] = nxt
			}
			cur = nxt
		}
		nodes[cur].out = true
	}
	// BFS fail links; fold out bits so a hit at any suffix reports.
	queue := make([]int32, 0, len(nodes))
	for b := 0; b < 256; b++ {
		if c := nodes[0].child[b]; c != 0 {
			queue = append(queue, c)
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for b := 0; b < 256; b++ {
			c := nodes[u].child[b]
			if c == 0 {
				continue
			}
			f := nodes[u].fail
			for f != 0 && nodes[f].child[b] == 0 {
				f = nodes[f].fail
			}
			nodes[c].fail = nodes[f].child[b] // root's missing edges are 0
			if nodes[c].fail == c {
				nodes[c].fail = 0
			}
			if nodes[nodes[c].fail].out {
				nodes[c].out = true
			}
			queue = append(queue, c)
		}
	}
	// Flatten to a DFA: missing edges follow the fail chain.
	s.next = make([][256]int32, len(nodes))
	s.out = make([]bool, len(nodes))
	for qi := -1; qi < len(queue); qi++ { // root first, then BFS order
		u := int32(0)
		if qi >= 0 {
			u = queue[qi]
		}
		s.out[u] = nodes[u].out
		for b := 0; b < 256; b++ {
			if c := nodes[u].child[b]; c != 0 {
				s.next[u][b] = c
			} else if u != 0 {
				s.next[u][b] = s.next[nodes[u].fail][b]
			}
		}
	}
}

// States returns the number of DFA states (0 for the byte-table paths),
// for tests and capacity reporting.
func (s *Set) States() int { return len(s.next) }
