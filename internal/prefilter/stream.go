package prefilter

import (
	"bytes"
	"time"

	"repro/internal/simdscan"
)

// span is one candidate window in global stream offsets, inclusive.
type span struct{ a, b int }

// Stream is the per-flow prefilter state: the literal scanner's DFA state,
// a short history of recent stream bytes (so a window opening before the
// current chunk can be replayed), and the window bookkeeping that decides
// when the match automaton runs versus parks. Literal occurrences split
// across chunk boundaries are found because the DFA state survives Scan
// calls; windows reaching back across a boundary are replayed from the
// history buffer. A Stream is not safe for concurrent use.
type Stream struct {
	set *Set

	state        int32 // AC DFA state (unused on other tiers)
	tstate       simdscan.TeddyState
	pos          int    // global offset of the next byte to consume
	scannedUntil int    // last global offset delivered to the automaton
	activeUntil  int    // open window extending past the last chunk, or -1
	hist         []byte // last <=window stream bytes before pos
	windows      []span // per-chunk scratch, merged and ordered

	stats Stats
}

// NewStream creates a stream at global offset 0.
func (s *Set) NewStream() *Stream {
	return &Stream{set: s, scannedUntil: -1, activeUntil: -1}
}

// Reset restores offset 0 with no pending windows or history.
func (st *Stream) Reset() {
	st.state = 0
	st.tstate = simdscan.TeddyState{}
	st.pos = 0
	st.scannedUntil = -1
	st.activeUntil = -1
	st.hist = st.hist[:0]
	st.stats = Stats{}
}

// Stats returns the cumulative counters since the last Reset.
func (st *Stream) Stats() Stats { return st.stats }

// Pos returns the number of stream bytes consumed.
func (st *Stream) Pos() int { return st.pos }

// Scan advances the stream by one chunk. It locates literal hits, merges
// them into candidate windows of radius window-1, and calls scan(base,
// data) for each maximal byte range the match automaton must consume —
// base is the global offset of data[0], and data may reference history
// bytes from before this chunk. reset is called before a range that does
// not directly extend the previously scanned one (the automaton parked
// across a gap no match can span, so clearing its state is sound).
// Ranges arrive in increasing offset order and never overlap.
func (st *Stream) Scan(chunk []byte, scan func(base int, data []byte), reset func()) {
	if len(chunk) == 0 {
		return
	}
	w := st.set.window
	base := st.pos
	end := base + len(chunk) - 1

	// Phase 1: literal scan -> merged candidate windows.
	t0 := time.Now()
	st.windows = st.windows[:0]
	if st.activeUntil >= base {
		st.windows = append(st.windows, span{base, st.activeUntil})
	}
	st.activeUntil = -1
	switch {
	case st.set.hasSingle:
		off := 0
		for {
			i := bytes.IndexByte(chunk[off:], st.set.single)
			if i < 0 {
				break
			}
			st.addHit(base+off+i, w)
			off += i + 1
		}
	case st.set.oneByte:
		for i := 0; i < len(chunk); i++ {
			if st.set.byteMask[chunk[i]] {
				st.addHit(base+i, w)
			}
		}
	case st.set.teddy != nil:
		// st.hist still holds the bytes before this chunk (it is refreshed
		// after phase 2), exactly what cross-boundary verification reads.
		st.tstate = st.set.teddy.Scan(chunk, st.hist, st.tstate, func(end int) {
			st.addHit(base+end, w)
		})
	default:
		s, next, out := st.state, st.set.next, st.set.out
		for i := 0; i < len(chunk); i++ {
			s = next[s][chunk[i]]
			if out[s] {
				st.addHit(base+i, w)
			}
		}
		st.state = s
	}
	st.stats.WindowNS += time.Since(t0).Nanoseconds()

	// Phase 2: deliver window bytes, replaying history where a window
	// opens before this chunk.
	delivered := 0
	for _, win := range st.windows {
		a, b := win.a, win.b
		if b > end {
			st.activeUntil = b
			b = end
		}
		if a <= st.scannedUntil {
			a = st.scannedUntil + 1
		}
		if a > b {
			continue
		}
		if a > st.scannedUntil+1 {
			reset()
		}
		if a < base {
			// History part: positions [base-len(hist), base-1].
			lo := a - (base - len(st.hist))
			hi := min(b, base-1) - (base - len(st.hist))
			scan(a, st.hist[lo:hi+1])
			st.stats.ScannedBytes += int64(hi - lo + 1)
		}
		if b >= base {
			ca := max(a, base)
			scan(ca, chunk[ca-base:b-base+1])
			delivered += b - ca + 1
		}
		st.scannedUntil = b
	}
	st.stats.ScannedBytes += int64(delivered)
	st.stats.SkippedBytes += int64(len(chunk) - delivered)

	// Keep the last w bytes of the stream for the next chunk's replays.
	if len(chunk) >= w {
		st.hist = append(st.hist[:0], chunk[len(chunk)-w:]...)
	} else {
		keep := w - len(chunk)
		if keep > len(st.hist) {
			keep = len(st.hist)
		}
		copy(st.hist, st.hist[len(st.hist)-keep:])
		st.hist = append(st.hist[:keep], chunk...)
	}
	st.pos += len(chunk)
}

// addHit merges the window of a literal hit ending at global offset t into
// the per-chunk window list. Hits arrive in increasing t, so only the last
// window can absorb the new one.
func (st *Stream) addHit(t, w int) {
	st.stats.LiteralHits++
	a, b := t-w+1, t+w-1
	if a < 0 {
		a = 0
	}
	if n := len(st.windows); n > 0 && a <= st.windows[n-1].b+1 {
		if b > st.windows[n-1].b {
			st.windows[n-1].b = b
		}
		return
	}
	st.windows = append(st.windows, span{a, b})
	st.stats.Windows++
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
