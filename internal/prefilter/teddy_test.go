package prefilter

import (
	"fmt"
	"testing"
)

// TestTierSelection pins the representation each literal-set shape
// compiles to.
func TestTierSelection(t *testing.T) {
	cases := []struct {
		lits []string
		want Tier
	}{
		{[]string{"a"}, TierMemchr},
		{[]string{"a", "a"}, TierMemchr},
		{[]string{"a", "b"}, TierByteTable},
		{[]string{"ab"}, TierTeddy},
		{[]string{"needle", "pin", "tack"}, TierTeddy},
		{[]string{"ab", "c"}, TierAC}, // single-byte literal blocks fingerprints
	}
	var many []string
	for i := 0; i < 33; i++ {
		many = append(many, fmt.Sprintf("lit%02d", i))
	}
	cases = append(cases, struct {
		lits []string
		want Tier
	}{many, TierAC}) // over the teddy cap

	for _, tc := range cases {
		lits := make([][]byte, len(tc.lits))
		w := 1
		for i, l := range tc.lits {
			lits[i] = []byte(l)
			if len(l) > w {
				w = len(l)
			}
		}
		s, err := NewSet(lits, w+2)
		if err != nil {
			t.Fatalf("%q: %v", tc.lits, err)
		}
		if s.Tier() != tc.want {
			t.Errorf("%q: tier %v, want %v", tc.lits, s.Tier(), tc.want)
		}
	}
}

// streamRanges collects every (base, len) range a stream delivers to the
// automaton over the given chunking, plus the reset positions — the full
// observable behavior of a Set behind Scan.
func streamRanges(s *Set, data []byte, chunkSizes []int) string {
	st := s.NewStream()
	var out []string
	pos := 0
	ci := 0
	for pos < len(data) {
		n := chunkSizes[ci%len(chunkSizes)]
		ci++
		if n < 1 {
			n = 1
		}
		if pos+n > len(data) {
			n = len(data) - pos
		}
		st.Scan(data[pos:pos+n],
			func(base int, d []byte) { out = append(out, fmt.Sprintf("%d+%d", base, len(d))) },
			func() { out = append(out, "R") })
		pos += n
	}
	return fmt.Sprint(out, st.Stats().LiteralHits)
}

// FuzzFingerprintDifferential proves the fingerprint tier never drops a
// candidate: for any teddy-eligible literal set, a Set compiled to the
// Teddy scanner must deliver byte-for-byte the same candidate ranges,
// resets, and literal-hit count as the same literals compiled straight to
// the Aho-Corasick DFA — including literal occurrences split across chunk
// boundaries, which the fuzzer controls through the chunk size byte.
func FuzzFingerprintDifferential(f *testing.F) {
	f.Add([]byte("ab,cd"), []byte("xxabyycdxx"), uint8(3))
	f.Add([]byte("needle"), []byte("say needle twice: needleneedle"), uint8(1))
	f.Add([]byte("aa,aaa,aaaa"), []byte("aaaaaaaaaa"), uint8(4))
	f.Fuzz(func(t *testing.T, litSpec, data []byte, chunk uint8) {
		// litSpec: comma-separated literals, invalid shapes skipped.
		var lits [][]byte
		start := 0
		for i := 0; i <= len(litSpec); i++ {
			if i == len(litSpec) || litSpec[i] == ',' {
				if i > start {
					lits = append(lits, litSpec[start:i])
				}
				start = i + 1
			}
		}
		if len(lits) == 0 {
			t.Skip()
		}
		w := 0
		for _, l := range lits {
			if len(l) > w {
				w = len(l)
			}
		}
		teddySet, err := NewSet(lits, w)
		if err != nil || teddySet.Tier() != TierTeddy {
			t.Skip() // not a fingerprint-tier shape
		}
		acSet, err := NewSetAC(lits, w)
		if err != nil {
			t.Fatal(err)
		}

		sizes := []int{1 + int(chunk)%64}
		got := streamRanges(teddySet, data, sizes)
		want := streamRanges(acSet, data, sizes)
		if got != want {
			t.Fatalf("lits %q chunk %d:\nteddy %s\nac    %s", lits, sizes[0], got, want)
		}
	})
}

// TestFingerprintDifferentialSeeds runs the fuzz seeds as a plain test so
// `go test` exercises the differential without -fuzz.
func TestFingerprintDifferentialSeeds(t *testing.T) {
	lits := [][]byte{[]byte("ab"), []byte("abcd"), []byte("dcba"), []byte("bb")}
	data := []byte("zabz abcd dcbabb ab abcdcba zzzz bb")
	w := 4
	teddySet, err := NewSet(lits, w)
	if err != nil {
		t.Fatal(err)
	}
	if teddySet.Tier() != TierTeddy {
		t.Fatalf("tier %v, want teddy", teddySet.Tier())
	}
	acSet, err := NewSetAC(lits, w)
	if err != nil {
		t.Fatal(err)
	}
	for _, sizes := range [][]int{{1}, {2}, {5}, {len(data)}} {
		got := streamRanges(teddySet, data, sizes)
		want := streamRanges(acSet, data, sizes)
		if got != want {
			t.Fatalf("chunks %v:\nteddy %s\nac    %s", sizes, got, want)
		}
	}
}
