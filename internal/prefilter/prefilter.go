// Package prefilter implements the literal prefilter of the fast-path scan
// engine: a compile-time analysis that extracts mandatory literals per
// pattern (internal/regexast), a multi-literal candidate scanner (a
// memchr-style skip loop for single-byte sets, an Aho-Corasick DFA for
// multi-literal sets), and a streaming window executor that turns literal
// hits into the byte ranges the match automaton actually has to consume.
//
// Soundness rests on two facts. First, the literal sets are mandatory:
// every string a prefiltered pattern matches contains at least one set
// literal as a substring (regexast.MandatoryLiterals). Second, the
// prefiltered patterns are linear: a pattern of L states matches exactly
// L consecutive bytes, so a match ending at e spans [e-L+1, e] and any of
// its literal occurrences ends inside that span. A literal hit ending at
// stream offset t therefore covers every match containing it with the
// single window [t-W+1, t+W-1], W being the longest pattern length — and
// a Shift-And automaton reset at a window start loses only matches that
// start earlier, which some other window necessarily covers.
package prefilter

import (
	"fmt"

	"repro/internal/regexast"
)

// Verdict is the compile-time prefilter decision for one pattern, printed
// by `rapc -explain` and exposed per program by the service.
type Verdict struct {
	// Prefilterable reports whether the pattern runs behind the literal
	// prefilter (true) or on the always-on scan path (false).
	Prefilterable bool `json:"prefilterable"`
	// Literals holds the mandatory literal set (escaped, human-readable)
	// when Prefilterable.
	Literals []string `json:"literals,omitempty"`
	// Reason names the fallback cause when not Prefilterable.
	Reason string `json:"reason,omitempty"`
	// Tier names the candidate-scanner tier of the compiled literal union
	// (memchr, bytetable, teddy, ac). Set once the program's literal Set is
	// built — it depends on every prefiltered pattern, not this one alone.
	Tier string `json:"tier,omitempty"`
}

func (v Verdict) String() string {
	if v.Prefilterable {
		return fmt.Sprintf("prefilter %v", v.Literals)
	}
	return "always-on: " + v.Reason
}

// Analyze runs the mandatory-literal analysis on one parsed pattern and
// returns the raw literal set alongside the reportable verdict. A nil
// literal set means the pattern must stay always-on.
func Analyze(root regexast.Node) ([][]byte, Verdict) {
	lits, reason := regexast.MandatoryLiterals(root, regexast.DefaultLiteralCaps)
	if reason != "" {
		return nil, Verdict{Prefilterable: false, Reason: reason}
	}
	v := Verdict{Prefilterable: true, Literals: make([]string, len(lits))}
	for i, l := range lits {
		v.Literals[i] = fmt.Sprintf("%q", l)
	}
	return lits, v
}

// Stats counts prefilter effectiveness over one stream. Scanned and
// Skipped partition the chunk bytes seen so far (replayed history bytes
// count toward Scanned, so the two may sum slightly above the stream
// length when windows reach back across a park gap).
type Stats struct {
	ScannedBytes int64 `json:"scanned_bytes"` // bytes the automaton consumed
	SkippedBytes int64 `json:"skipped_bytes"` // bytes only the literal scanner saw
	LiteralHits  int64 `json:"literal_hits"`
	Windows      int64 `json:"windows"`   // merged candidate windows delivered
	WindowNS     int64 `json:"window_ns"` // time locating candidate windows
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.ScannedBytes += o.ScannedBytes
	s.SkippedBytes += o.SkippedBytes
	s.LiteralHits += o.LiteralHits
	s.Windows += o.Windows
	s.WindowNS += o.WindowNS
}

// Sub returns s - o (for delta accounting against a prior snapshot).
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		ScannedBytes: s.ScannedBytes - o.ScannedBytes,
		SkippedBytes: s.SkippedBytes - o.SkippedBytes,
		LiteralHits:  s.LiteralHits - o.LiteralHits,
		Windows:      s.Windows - o.Windows,
		WindowNS:     s.WindowNS - o.WindowNS,
	}
}
