package prefilter

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func lits(ss ...string) [][]byte {
	out := make([][]byte, len(ss))
	for i, s := range ss {
		out[i] = []byte(s)
	}
	return out
}

// refHits returns the end offsets of every occurrence of every literal in
// input — the oracle the scanner representations are checked against.
func refHits(input []byte, lit [][]byte) []int {
	var ends []int
	for i := range input {
		for _, l := range lit {
			if i+1 >= len(l) && bytes.Equal(input[i+1-len(l):i+1], l) {
				ends = append(ends, i)
				break
			}
		}
	}
	return ends
}

// refWindows merges the hit windows like the stream should: radius w-1
// around each hit end, clamped to the input, adjacent/overlapping merged.
func refWindows(input []byte, lit [][]byte, w int) [][2]int {
	var out [][2]int
	for _, t := range refHits(input, lit) {
		a, b := t-w+1, t+w-1
		if a < 0 {
			a = 0
		}
		if b > len(input)-1 {
			b = len(input) - 1
		}
		if n := len(out); n > 0 && a <= out[n-1][1]+1 {
			if b > out[n-1][1] {
				out[n-1][1] = b
			}
			continue
		}
		out = append(out, [2]int{a, b})
	}
	return out
}

// collect feeds input to a fresh stream in the given chunk sizes and
// returns the delivered ranges as merged [start,end] spans plus the bytes
// actually delivered, reconstructed positionally.
func collect(t *testing.T, s *Set, input []byte, chunks []int) [][2]int {
	t.Helper()
	st := s.NewStream()
	type got struct{ a, b int }
	var ranges []got
	deliver := func(base int, data []byte) {
		// Delivered bytes must equal the stream bytes at those offsets.
		if !bytes.Equal(data, input[base:base+len(data)]) {
			t.Fatalf("delivered bytes at %d differ from stream: %q vs %q",
				base, data, input[base:base+len(data)])
		}
		if n := len(ranges); n > 0 && base == ranges[n-1].b+1 {
			ranges[n-1].b = base + len(data) - 1
			return
		}
		ranges = append(ranges, got{base, base + len(data) - 1})
	}
	pos := 0
	for _, n := range chunks {
		if n > len(input)-pos {
			n = len(input) - pos
		}
		st.Scan(input[pos:pos+n], deliver, func() {})
		pos += n
	}
	if pos < len(input) {
		st.Scan(input[pos:], deliver, func() {})
	}
	out := make([][2]int, len(ranges))
	for i, r := range ranges {
		out[i] = [2]int{r.a, r.b}
	}
	return out
}

func sameSpans(a, b [][2]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestScannerRepresentations(t *testing.T) {
	cases := []struct {
		name string
		lits [][]byte
	}{
		{"memchr-single", lits("k")},
		{"byte-table", lits("a", "z", "#")},
		{"ac-multi", lits("needle", "pin", "na")},
		{"ac-overlap", lits("aa", "aaa")},
		{"ac-suffix", lits("she", "he", "hers")},
	}
	input := []byte("xxshersheyyaaaanaxneedlezz#pinkxx")
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := 8
			s, err := NewSet(tc.lits, w)
			if err != nil {
				t.Fatal(err)
			}
			want := refWindows(input, tc.lits, w)
			// Whole-buffer and two chunkings must all deliver the same spans.
			for _, chunks := range [][]int{{len(input)}, {1}, {5, 3, 9}} {
				sizes := chunks
				if len(sizes) == 1 && sizes[0] == 1 {
					sizes = make([]int, len(input))
					for i := range sizes {
						sizes[i] = 1
					}
				}
				got := collect(t, s, input, sizes)
				if !sameSpans(got, want) {
					t.Errorf("chunks %v: spans %v, want %v", chunks, got, want)
				}
			}
		})
	}
}

func TestStreamFindsSplitLiterals(t *testing.T) {
	// The literal straddles every chunk boundary we try: the AC state must
	// carry across Scan calls, and the window must replay history bytes.
	s, err := NewSet(lits("needle"), 10)
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("aaaaaaaaaaneedlebbbbbbbbbb")
	want := refWindows(input, lits("needle"), 10)
	for cut := 1; cut < len(input)-1; cut++ {
		got := collect(t, s, input, []int{cut, len(input) - cut})
		if !sameSpans(got, want) {
			t.Errorf("cut %d: spans %v, want %v", cut, got, want)
		}
	}
}

func TestStreamResetOnGap(t *testing.T) {
	// Two far-apart hits: the executor must call reset between the two
	// windows (a gap no match can span) and never otherwise mid-window.
	s, err := NewSet(lits("k"), 3)
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("..k.........k..")
	st := s.NewStream()
	resets := 0
	var spans [][2]int
	st.Scan(input, func(base int, data []byte) {
		spans = append(spans, [2]int{base, base + len(data) - 1})
	}, func() { resets++ })
	want := refWindows(input, lits("k"), 3)
	if !sameSpans(spans, want) {
		t.Fatalf("spans %v, want %v", spans, want)
	}
	if resets != 1 {
		t.Errorf("resets = %d, want 1 (one gap between the two windows)", resets)
	}
}

func TestStreamStats(t *testing.T) {
	s, err := NewSet(lits("kk"), 4)
	if err != nil {
		t.Fatal(err)
	}
	st := s.NewStream()
	input := []byte(strings.Repeat(".", 40) + "kk" + strings.Repeat(".", 40))
	st.Scan(input, func(int, []byte) {}, func() {})
	stats := st.Stats()
	if stats.LiteralHits != 1 {
		t.Errorf("LiteralHits = %d, want 1", stats.LiteralHits)
	}
	if stats.Windows != 1 {
		t.Errorf("Windows = %d, want 1", stats.Windows)
	}
	// The hit ends at offset 41; with w=4 the window is [38, 44]: 7 bytes
	// scanned, the rest skipped.
	if stats.ScannedBytes != 7 {
		t.Errorf("ScannedBytes = %d, want 7", stats.ScannedBytes)
	}
	if stats.SkippedBytes != int64(len(input))-7 {
		t.Errorf("SkippedBytes = %d, want %d", stats.SkippedBytes, len(input)-7)
	}
}

func TestNewSetValidation(t *testing.T) {
	if _, err := NewSet(nil, 4); err == nil {
		t.Error("empty literal set accepted")
	}
	if _, err := NewSet(lits(""), 4); err == nil {
		t.Error("empty literal accepted")
	}
	if _, err := NewSet(lits("toolong"), 3); err == nil {
		t.Error("literal longer than window accepted")
	}
	if _, err := NewSet(lits("ab"), 0); err == nil {
		t.Error("zero window accepted")
	}
}

// TestStreamRandomChunking drives random inputs with planted literals
// through random chunk splits and checks the delivered spans against the
// whole-buffer oracle each time.
func TestStreamRandomChunking(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	litSet := lits("abc", "xyzw", "q")
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		input := make([]byte, n)
		for i := range input {
			input[i] = byte('a' + rng.Intn(4)) // dense 'a'..'d' hits "abc" sometimes
		}
		for p := 0; p+4 < n && rng.Intn(3) == 0; p += 7 + rng.Intn(20) {
			copy(input[p:], "xyzw")
		}
		w := 4 + rng.Intn(8)
		s, err := NewSet(litSet, w)
		if err != nil {
			t.Fatal(err)
		}
		var chunks []int
		rem := n
		for rem > 0 {
			c := 1 + rng.Intn(rem)
			chunks = append(chunks, c)
			rem -= c
		}
		want := refWindows(input, litSet, w)
		got := collect(t, s, input, chunks)
		if !sameSpans(got, want) {
			t.Fatalf("trial %d chunks %v:\n got %v\nwant %v", trial, chunks, got, want)
		}
	}
}

func BenchmarkStreamScan(b *testing.B) {
	for _, density := range []int{0, 1, 10} {
		b.Run(fmt.Sprintf("hits=%d", density), func(b *testing.B) {
			s, err := NewSet(lits("needle"), 16)
			if err != nil {
				b.Fatal(err)
			}
			input := bytes.Repeat([]byte("the quick brown fox "), 3200) // 64 KiB
			for i := 0; i < density; i++ {
				copy(input[i*(len(input)/(density+1)):], "needle")
			}
			st := s.NewStream()
			b.SetBytes(int64(len(input)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.Reset()
				st.Scan(input, func(int, []byte) {}, func() {})
			}
		})
	}
}
