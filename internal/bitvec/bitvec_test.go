package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndLen(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 4064} {
		v := New(n)
		if v.Len() != n {
			t.Errorf("New(%d).Len() = %d", n, v.Len())
		}
		if v.Any() {
			t.Errorf("New(%d) not zero", n)
		}
	}
}

func TestSetGetClear(t *testing.T) {
	v := New(130)
	idx := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, i := range idx {
		v.Set(i)
	}
	for _, i := range idx {
		if !v.Get(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if v.Count() != len(idx) {
		t.Errorf("Count = %d, want %d", v.Count(), len(idx))
	}
	for _, i := range idx {
		v.Clear(i)
	}
	if v.Any() {
		t.Error("vector not empty after clearing")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range Set")
		}
	}()
	v := New(8)
	v.Set(8)
}

func TestShiftLeft(t *testing.T) {
	// Paper example: shft([0,1,0]) = [0,0,1]; index 1 set -> index 2 set.
	v := New(3)
	v.Set(1)
	v.ShiftLeft()
	if v.Get(1) || !v.Get(2) || v.Get(0) {
		t.Errorf("ShiftLeft([0,1,0]) = %s, want 100", v)
	}
	// Top bit falls off.
	v.ShiftLeft()
	if v.Any() {
		t.Errorf("expected empty after overflow shift, got %s", v)
	}
}

func TestShiftLeftAcrossWords(t *testing.T) {
	v := New(130)
	v.Set(63)
	v.ShiftLeft()
	if !v.Get(64) || v.Get(63) {
		t.Errorf("shift across word boundary failed: %v", v.Words())
	}
	v.Set(127)
	v.ShiftLeft()
	if !v.Get(65) || !v.Get(128) {
		t.Errorf("second cross-word shift failed")
	}
}

func TestShiftRight(t *testing.T) {
	v := New(130)
	v.Set(64)
	v.Set(0)
	v.ShiftRight()
	if !v.Get(63) {
		t.Error("bit 64 did not move to 63")
	}
	if v.Get(0) && v.Count() != 1 {
		t.Error("bit 0 should be discarded")
	}
	if v.Count() != 1 {
		t.Errorf("Count = %d, want 1", v.Count())
	}
}

func TestLogicOps(t *testing.T) {
	a, _ := Parse("1100")
	b, _ := Parse("1010")
	and := a.Clone()
	and.And(b)
	if and.String() != "1000" {
		t.Errorf("And = %s", and)
	}
	or := a.Clone()
	or.Or(b)
	if or.String() != "1110" {
		t.Errorf("Or = %s", or)
	}
	xor := a.Clone()
	xor.Xor(b)
	if xor.String() != "0110" {
		t.Errorf("Xor = %s", xor)
	}
	andnot := a.Clone()
	andnot.AndNot(b)
	if andnot.String() != "0100" {
		t.Errorf("AndNot = %s", andnot)
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, s := range []string{"", "0", "1", "0011", "10000000000000000000000000000000000000000000000000000000000000001"} {
		v, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if v.String() != s {
			t.Errorf("round trip %q -> %q", s, v.String())
		}
	}
	if _, err := Parse("01x"); err == nil {
		t.Error("expected error for invalid character")
	}
}

func TestNextSet(t *testing.T) {
	v := New(200)
	want := []int{3, 64, 65, 190}
	for _, i := range want {
		v.Set(i)
	}
	var got []int
	for i := v.NextSet(0); i >= 0; i = v.NextSet(i + 1) {
		got = append(got, i)
	}
	if len(got) != len(want) {
		t.Fatalf("NextSet walk = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NextSet walk = %v, want %v", got, want)
		}
	}
	if v.NextSet(191) != -1 {
		t.Error("NextSet past last set bit should be -1")
	}
}

func TestAnyInRange(t *testing.T) {
	v := New(100)
	v.Set(50)
	if !v.AnyInRange(50, 51) || !v.AnyInRange(0, 100) {
		t.Error("AnyInRange missed set bit")
	}
	if v.AnyInRange(0, 50) || v.AnyInRange(51, 100) {
		t.Error("AnyInRange false positive")
	}
}

func TestFromBits(t *testing.T) {
	v := FromBits([]bool{true, false, true})
	if v.String() != "101" {
		t.Errorf("FromBits = %s", v)
	}
}

func TestCopyFrom(t *testing.T) {
	a := New(70)
	a.Set(69)
	b := New(70)
	b.CopyFrom(a)
	if !b.Get(69) {
		t.Error("CopyFrom did not copy")
	}
	a.Clear(69)
	if !b.Get(69) {
		t.Error("CopyFrom aliases source")
	}
}

// randomVector builds a vector of length n with bits drawn from r, for
// property tests.
func randomVector(r *rand.Rand, n int) Vector {
	v := New(n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 1 {
			v.Set(i)
		}
	}
	return v
}

func TestPropShiftLeftThenRight(t *testing.T) {
	// Shifting left then right clears the top bit and bit 0 but preserves
	// everything in between.
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%200 + 2
		r := rand.New(rand.NewSource(seed))
		v := randomVector(r, n)
		orig := v.Clone()
		v.ShiftLeft()
		v.ShiftRight()
		for i := 0; i < n-1; i++ {
			if v.Get(i) != orig.Get(i) {
				return false
			}
		}
		return !v.Get(n - 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropCountMatchesNextSetWalk(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%300 + 1
		r := rand.New(rand.NewSource(seed))
		v := randomVector(r, n)
		walk := 0
		for i := v.NextSet(0); i >= 0; i = v.NextSet(i + 1) {
			walk++
		}
		return walk == v.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropDeMorgan(t *testing.T) {
	// count(a AND b) + count(a OR b) == count(a) + count(b)
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%128 + 1
		r := rand.New(rand.NewSource(seed))
		a := randomVector(r, n)
		b := randomVector(r, n)
		and := a.Clone()
		and.And(b)
		or := a.Clone()
		or.Or(b)
		return and.Count()+or.Count() == a.Count()+b.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropStringParseRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw) % 150
		r := rand.New(rand.NewSource(seed))
		v := randomVector(r, n)
		back, err := Parse(v.String())
		return err == nil && back.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkShiftLeft4096(b *testing.B) {
	v := New(4096)
	v.Set(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.ShiftLeft()
		if v.None() {
			v.Set(0)
		}
	}
}
