// Package bitvec provides variable-length bit vectors used throughout the
// RAP reproduction: as NBVA counter vectors, as Shift-And state/label masks,
// and as activation vectors inside the cycle-level simulator.
//
// A Vector has a fixed length in bits, chosen at construction. Bit 0 is the
// least significant bit of word 0, matching the paper's convention that the
// rightmost bit of the written form x_{n-1}...x_1 x_0 is index 0.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Vector is a fixed-length bit vector. The zero value is a zero-length
// vector; use New to create one with a given size.
type Vector struct {
	n     int
	words []uint64
}

// New returns a zero vector with n bits. n must be non-negative.
func New(n int) Vector {
	if n < 0 {
		panic(fmt.Sprintf("bitvec: negative length %d", n))
	}
	return Vector{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromBits builds a vector whose i-th bit is set iff bits[i] is true.
func FromBits(bits []bool) Vector {
	v := New(len(bits))
	for i, b := range bits {
		if b {
			v.Set(i)
		}
	}
	return v
}

// Len returns the number of bits in the vector.
func (v Vector) Len() int { return v.n }

// Words exposes the underlying words (read-only by convention). The last
// word's bits above Len are always zero.
func (v Vector) Words() []uint64 { return v.words }

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	w := Vector{n: v.n, words: make([]uint64, len(v.words))}
	copy(w.words, v.words)
	return w
}

// Set sets bit i to 1.
func (v Vector) Set(i int) {
	v.check(i)
	v.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear sets bit i to 0.
func (v Vector) Clear(i int) {
	v.check(i)
	v.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Get reports whether bit i is set.
func (v Vector) Get(i int) bool {
	v.check(i)
	return v.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

func (v Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// Reset zeroes every bit in place.
func (v Vector) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// Any reports whether any bit is set.
func (v Vector) Any() bool {
	for _, w := range v.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// None reports whether the vector is all zero.
func (v Vector) None() bool { return !v.Any() }

// Count returns the number of set bits (population count).
func (v Vector) Count() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Equal reports whether v and o have identical length and contents.
func (v Vector) Equal(o Vector) bool {
	if v.n != o.n {
		return false
	}
	for i, w := range v.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// CopyFrom copies o into v. Both vectors must have the same length.
func (v Vector) CopyFrom(o Vector) {
	if v.n != o.n {
		panic(fmt.Sprintf("bitvec: CopyFrom length mismatch %d != %d", v.n, o.n))
	}
	copy(v.words, o.words)
}

// And stores v AND o into v. Lengths must match.
func (v Vector) And(o Vector) {
	v.matchLen(o)
	for i := range v.words {
		v.words[i] &= o.words[i]
	}
}

// AndNot stores v AND NOT o into v. Lengths must match.
func (v Vector) AndNot(o Vector) {
	v.matchLen(o)
	for i := range v.words {
		v.words[i] &^= o.words[i]
	}
}

// Or stores v OR o into v. Lengths must match.
func (v Vector) Or(o Vector) {
	v.matchLen(o)
	for i := range v.words {
		v.words[i] |= o.words[i]
	}
}

// Xor stores v XOR o into v. Lengths must match.
func (v Vector) Xor(o Vector) {
	v.matchLen(o)
	for i := range v.words {
		v.words[i] ^= o.words[i]
	}
}

func (v Vector) matchLen(o Vector) {
	if v.n != o.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d != %d", v.n, o.n))
	}
}

// ShiftLeft shifts every bit one position toward higher indices in place
// (the paper's "shft(v)": [0,1,0] -> [0,0,1]). The top bit is discarded;
// it can be inspected beforehand with Get(Len()-1) for overflow checks.
func (v Vector) ShiftLeft() {
	var carry uint64
	for i := range v.words {
		next := v.words[i] >> (wordBits - 1)
		v.words[i] = v.words[i]<<1 | carry
		carry = next
	}
	v.trim()
}

// ShiftRight shifts every bit one position toward lower indices in place.
// Bit 0 is discarded; the top bit becomes zero.
func (v Vector) ShiftRight() {
	for i := 0; i < len(v.words); i++ {
		v.words[i] >>= 1
		if i+1 < len(v.words) {
			v.words[i] |= v.words[i+1] << (wordBits - 1)
		}
	}
}

// trim clears bits beyond Len in the last word.
func (v Vector) trim() {
	if v.n%wordBits != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (1 << (uint(v.n) % wordBits)) - 1
	}
}

// AnyInRange reports whether any bit in [lo, hi) is set.
func (v Vector) AnyInRange(lo, hi int) bool {
	if lo < 0 || hi > v.n || lo > hi {
		panic(fmt.Sprintf("bitvec: bad range [%d,%d) of %d", lo, hi, v.n))
	}
	for i := lo; i < hi; i++ {
		if v.Get(i) {
			return true
		}
	}
	return false
}

// NextSet returns the index of the first set bit at or after i, or -1 if
// there is none. It allows iterating set bits in O(set + words).
func (v Vector) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= v.n {
		return -1
	}
	w := i / wordBits
	off := uint(i) % wordBits
	cur := v.words[w] >> off
	if cur != 0 {
		return i + bits.TrailingZeros64(cur)
	}
	for w++; w < len(v.words); w++ {
		if v.words[w] != 0 {
			return w*wordBits + bits.TrailingZeros64(v.words[w])
		}
	}
	return -1
}

// String renders the vector most-significant-bit first, the notation used
// in the paper's Shift-And examples (e.g. "0011" has bits 0 and 1 set).
func (v Vector) String() string {
	var b strings.Builder
	b.Grow(v.n)
	for i := v.n - 1; i >= 0; i-- {
		if v.Get(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Parse builds a vector from a most-significant-bit-first string of '0' and
// '1' characters, the inverse of String.
func Parse(s string) (Vector, error) {
	v := New(len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '1':
			v.Set(len(s) - 1 - i)
		case '0':
		default:
			return Vector{}, fmt.Errorf("bitvec: invalid character %q in %q", s[i], s)
		}
	}
	return v, nil
}
