package verify

import (
	"math/rand"
	"strings"
	"testing"
)

func TestRunCleanAcrossEngines(t *testing.T) {
	res, err := Run(Options{Trials: 15, PatternsPerTrial: 5, InputLen: 1500, Seed: 42, CheckStdlib: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mismatches) != 0 {
		for _, m := range res.Mismatches {
			t.Error(m.String())
		}
	}
	if res.Matches == 0 {
		t.Error("verification inputs never matched anything — planting broken")
	}
	if res.Trials != 15 {
		t.Errorf("trials = %d", res.Trials)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(Options{Trials: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Options{Trials: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Matches != b.Matches {
		t.Errorf("nondeterministic: %d vs %d matches", a.Matches, b.Matches)
	}
}

func TestLiteralFragment(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	frag := literalFragment("abx{5}cd", r)
	if string(frag) != "abxxxxxcd" {
		t.Errorf("fragment = %q", frag)
	}
	frag = literalFragment("ab(c|d)*e", r)
	if string(frag) != "ab" {
		t.Errorf("fragment = %q", frag)
	}
	if got := literalFragment("{bad", r); len(got) != 0 {
		t.Errorf("fragment = %q", got)
	}
}

func TestGenPatternsParseable(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		for _, p := range genPatterns(r, 8) {
			if p == "" {
				t.Fatal("empty pattern generated")
			}
		}
	}
}

func TestMismatchString(t *testing.T) {
	m := Mismatch{Trial: 3, Engine: "CAMA", Patterns: []string{"ab"}, Detail: "matches 1, reference 2"}
	s := m.String()
	if !strings.Contains(s, "CAMA") || !strings.Contains(s, "trial 3") {
		t.Errorf("Mismatch.String() = %q", s)
	}
}
