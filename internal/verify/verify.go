// Package verify is the differential verification harness: it generates
// random pattern sets and inputs, runs them through every execution engine
// in the repository — the RAP cycle simulator (all three modes), the
// CAMA / CA / BVAP baseline simulators, the software reference matcher,
// and (for the compatible subset) Go's regexp package — and reports any
// disagreement. It generalizes the §5.2 Hyperscan consistency check into
// a standing fuzzing tool (cmd/rapverify).
package verify

import (
	"context"
	"fmt"
	"math/rand"
	"regexp"
	"strings"

	"repro/internal/compile"
	"repro/internal/mapper"
	"repro/internal/refmatch"
	"repro/internal/sim"
)

// Options configure a verification run.
type Options struct {
	// Trials is the number of random (pattern set, input) pairs.
	Trials int
	// PatternsPerTrial is the pattern set size.
	PatternsPerTrial int
	// InputLen is the input stream length per trial.
	InputLen int
	// Seed makes runs reproducible.
	Seed int64
	// CheckStdlib additionally compares boolean match results against
	// Go's regexp for every pattern (on the RE2-compatible subset the
	// generator emits).
	CheckStdlib bool
}

func (o *Options) setDefaults() {
	if o.Trials == 0 {
		o.Trials = 50
	}
	if o.PatternsPerTrial == 0 {
		o.PatternsPerTrial = 6
	}
	if o.InputLen == 0 {
		o.InputLen = 2000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Mismatch describes one disagreement found.
type Mismatch struct {
	Trial    int
	Engine   string
	Patterns []string
	Detail   string
}

func (m Mismatch) String() string {
	return fmt.Sprintf("trial %d [%s]: %s (patterns: %s)",
		m.Trial, m.Engine, m.Detail, strings.Join(m.Patterns, " | "))
}

// Result summarizes a run.
type Result struct {
	Trials     int
	Engines    []string
	Mismatches []Mismatch
	Matches    int64 // total matches observed (sanity that inputs exercise patterns)
}

// Run executes the harness.
func Run(opts Options) (*Result, error) {
	opts.setDefaults()
	r := rand.New(rand.NewSource(opts.Seed))
	res := &Result{
		Trials:  opts.Trials,
		Engines: []string{"RAP", "RAP-shared", "RAP-NFA", "CAMA", "CA", "BVAP", "refmatch"},
	}
	for trial := 0; trial < opts.Trials; trial++ {
		patterns := genPatterns(r, opts.PatternsPerTrial)
		input := genInput(r, patterns, opts.InputLen)
		want, counts, err := runEngines(patterns, input)
		if err != nil {
			return nil, fmt.Errorf("trial %d: %w", trial, err)
		}
		res.Matches += want
		for engine, got := range counts {
			if got != want {
				res.Mismatches = append(res.Mismatches, Mismatch{
					Trial: trial, Engine: engine, Patterns: patterns,
					Detail: fmt.Sprintf("matches %d, reference %d", got, want),
				})
			}
		}
		if opts.CheckStdlib {
			res.Mismatches = append(res.Mismatches, checkStdlib(trial, patterns, input)...)
		}
	}
	return res, nil
}

// runEngines returns the reference match count and every engine's count.
func runEngines(patterns []string, input []byte) (int64, map[string]int64, error) {
	ref, err := refmatch.Compile(context.Background(), patterns, refmatch.Options{})
	if err != nil {
		return 0, nil, err
	}
	want := int64(ref.Count(input))
	counts := map[string]int64{"refmatch": want}

	res := compile.Compile(patterns, compile.Options{})
	if len(res.Errors) != 0 {
		return 0, nil, res.Errors[0]
	}
	p, err := mapper.Map(res, mapper.Options{})
	if err != nil {
		return 0, nil, err
	}
	rap, err := sim.SimulateRAP(res, p, input)
	if err != nil {
		return 0, nil, err
	}
	counts["RAP"] = rap.Matches

	// RAP with the prefix-sharing optimization: semantics must be
	// untouched by the trie merge.
	shared, err := compile.ShareNFAPrefixes(res, compile.Options{})
	if err != nil {
		return 0, nil, err
	}
	pShared, err := mapper.Map(shared, mapper.Options{})
	if err != nil {
		return 0, nil, err
	}
	rapShared, err := sim.SimulateRAP(shared, pShared, input)
	if err != nil {
		return 0, nil, err
	}
	counts["RAP-shared"] = rapShared.Matches

	resNFA := compile.Compile(patterns, compile.Options{ModePolicy: compile.ForceNFA})
	if len(resNFA.Errors) != 0 {
		return 0, nil, resNFA.Errors[0]
	}
	pNFA, err := mapper.Map(resNFA, mapper.Options{})
	if err != nil {
		return 0, nil, err
	}
	rapNFA, err := sim.SimulateRAP(resNFA, pNFA, input)
	if err != nil {
		return 0, nil, err
	}
	counts["RAP-NFA"] = rapNFA.Matches
	for _, archName := range []string{"CAMA", "CA"} {
		rep, err := sim.SimulateBaseline(archName, resNFA, pNFA, input)
		if err != nil {
			return 0, nil, err
		}
		counts[archName] = rep.Matches
	}

	resBV := compile.Compile(patterns, compile.Options{ModePolicy: compile.AllowNBVA})
	if len(resBV.Errors) != 0 {
		return 0, nil, resBV.Errors[0]
	}
	pBV, err := sim.MapBVAP(resBV)
	if err != nil {
		return 0, nil, err
	}
	bvap, err := sim.SimulateBVAP(resBV, pBV, input)
	if err != nil {
		return 0, nil, err
	}
	counts["BVAP"] = bvap.Matches
	return want, counts, nil
}

// checkStdlib compares boolean containment per pattern with Go's regexp.
func checkStdlib(trial int, patterns []string, input []byte) []Mismatch {
	var out []Mismatch
	m, err := refmatch.Compile(context.Background(), patterns, refmatch.Options{})
	if err != nil {
		return nil
	}
	matched := map[int]bool{}
	for _, hit := range m.Scan(input) {
		matched[hit.Pattern] = true
	}
	for i, p := range patterns {
		oracle, err := regexp.Compile("(?s)" + p)
		if err != nil {
			continue // outside RE2 subset; skip
		}
		want := oracle.Match(input)
		if want {
			if loc := oracle.FindIndex(input); loc != nil && loc[0] == loc[1] {
				continue // empty-width match: streaming semantics differ by design
			}
		}
		if matched[i] != want {
			out = append(out, Mismatch{
				Trial: trial, Engine: "stdlib-regexp", Patterns: []string{p},
				Detail: fmt.Sprintf("ours=%v stdlib=%v", matched[i], want),
			})
		}
	}
	return out
}

// genPatterns emits a random mixed-mode pattern set: linear strings,
// bounded repetitions, and Kleene structures.
func genPatterns(r *rand.Rand, n int) []string {
	out := make([]string, n)
	for i := range out {
		switch r.Intn(5) {
		case 0: // linear literal
			out[i] = randWord(r, 3+r.Intn(8))
		case 1: // linear with classes
			var b strings.Builder
			for j := 0; j < 3+r.Intn(5); j++ {
				if r.Intn(3) == 0 {
					b.WriteString("[" + randWord(r, 2) + "]")
				} else {
					b.WriteString(randWord(r, 1))
				}
			}
			out[i] = b.String()
		case 2: // exact bounded repetition
			out[i] = fmt.Sprintf("%s%c{%d}%s", randWord(r, 2), 'a'+rune(r.Intn(4)), 17+r.Intn(120), randWord(r, 2))
		case 3: // range / up-to repetition
			lo := 17 + r.Intn(40)
			out[i] = fmt.Sprintf("%s%c{%d,%d}%s", randWord(r, 2), 'a'+rune(r.Intn(4)), lo, lo+r.Intn(40)+1, randWord(r, 1))
		default: // Kleene structure
			out[i] = fmt.Sprintf("%s(%s|%s)*%s", randWord(r, 2), randWord(r, 2), randWord(r, 2), randWord(r, 2))
		}
	}
	return out
}

func randWord(r *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(6))
	}
	return string(b)
}

// genInput builds a background stream and plants fragments of the
// patterns' literal parts to provoke matches and near-matches.
func genInput(r *rand.Rand, patterns []string, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte('a' + r.Intn(6))
	}
	for k := 0; k < n/200; k++ {
		p := patterns[r.Intn(len(patterns))]
		frag := literalFragment(p, r)
		if len(frag) == 0 || len(frag) >= n {
			continue
		}
		copy(out[r.Intn(n-len(frag)):], frag)
	}
	return out
}

// literalFragment extracts a plantable byte string: literals pass
// through, bounded repetitions expand to their minimum, metacharacters
// collapse.
func literalFragment(pattern string, r *rand.Rand) []byte {
	var out []byte
	i := 0
	for i < len(pattern) {
		c := pattern[i]
		switch c {
		case '{':
			j := strings.IndexByte(pattern[i:], '}')
			if j < 0 {
				return out
			}
			var lo int
			fmt.Sscanf(pattern[i+1:i+j], "%d", &lo)
			if len(out) > 0 && lo > 1 {
				last := out[len(out)-1]
				for k := 1; k < lo && k < 400; k++ {
					out = append(out, last)
				}
			}
			i += j + 1
		case '(', ')', '|', '*', '+', '?', '[', ']', '.':
			// Stop at structural metacharacters: the fragment up to here
			// is still a useful prefix to plant.
			return out
		default:
			out = append(out, c)
			i++
		}
	}
	return out
}
