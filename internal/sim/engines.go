package sim

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/automata"
	"repro/internal/bitvec"
	"repro/internal/compile"
	"repro/internal/mapper"
	"repro/internal/nbva"
	"repro/internal/shiftand"
)

// --- Union NFA engine -------------------------------------------------
//
// All NFA regexes of an array are merged into one automaton so a cycle
// costs O(words + active states) instead of O(regexes). Per-regex
// anchoring is preserved with two initial masks.

type nfaArrayEngine struct {
	states []automata.State
	// Successor representation is hybrid: short lists set bits directly;
	// dense states (e.g. the quadratic unfolds of σ{0,n}) OR a mask.
	follow       [][]int32
	followMask   []bitvec.Vector // non-nil for dense states
	labels       [256]bitvec.Vector
	initAlways   bitvec.Vector // unanchored initial states, enabled every cycle
	initStart    bitvec.Vector // ^-anchored initial states, offset 0 only
	finals       bitvec.Vector
	endAnchored  bitvec.Vector // finals that only report at end of input
	active       bitvec.Vector
	next         bitvec.Vector
	scratch      bitvec.Vector
	tileOf       []int // state -> tile
	regexOf      []int // state -> compiled regex index
	crossSucc    []bool
	pos          int
	tiles        int
	tileMatched  []int // per-cycle scratch
	totalColumns int
	// onReport, when set, receives the compiled regex index of every
	// match report (per reporting STE per cycle).
	onReport func(regex int)
}

func newNFAArrayEngine(res *compile.Result, plan *arch.ArrayPlan) (*nfaArrayEngine, error) {
	e := &nfaArrayEngine{tiles: len(plan.Tiles)}
	offset := 0
	type pending struct {
		nfa    *automata.NFA
		regex  int
		offset int
	}
	var parts []pending
	for _, ri := range plan.Regexes {
		c := &res.Regexes[ri]
		if c.NFA == nil {
			return nil, fmt.Errorf("sim: regex %d has no NFA payload", ri)
		}
		parts = append(parts, pending{nfa: c.NFA, regex: ri, offset: offset})
		offset += c.NFA.NumStates()
	}
	n := offset
	e.active = bitvec.New(n)
	e.next = bitvec.New(n)
	e.scratch = bitvec.New(n)
	e.initAlways = bitvec.New(n)
	e.initStart = bitvec.New(n)
	e.finals = bitvec.New(n)
	e.endAnchored = bitvec.New(n)
	e.follow = make([][]int32, n)
	e.followMask = make([]bitvec.Vector, n)
	e.tileOf = make([]int, n)
	e.regexOf = make([]int, n)
	e.crossSucc = make([]bool, n)
	e.states = make([]automata.State, n)
	const denseThreshold = 16
	for _, p := range parts {
		for q, s := range p.nfa.States {
			g := p.offset + q
			e.states[g] = s
			if len(s.Follow) > denseThreshold {
				m := bitvec.New(n)
				for _, succ := range s.Follow {
					m.Set(p.offset + succ)
				}
				e.followMask[g] = m
			} else {
				f := make([]int32, len(s.Follow))
				for i, succ := range s.Follow {
					f[i] = int32(p.offset + succ)
				}
				e.follow[g] = f
			}
			tile, ok := plan.StateTile[arch.StateRef{Regex: p.regex, State: q}]
			if !ok {
				return nil, fmt.Errorf("sim: no tile for regex %d state %d", p.regex, q)
			}
			e.tileOf[g] = tile
			e.regexOf[g] = p.regex
		}
		for _, q := range p.nfa.Initial {
			if p.nfa.StartAnchored {
				e.initStart.Set(p.offset + q)
			} else {
				e.initAlways.Set(p.offset + q)
			}
		}
		for _, q := range p.nfa.Final {
			e.finals.Set(p.offset + q)
			if p.nfa.EndAnchored {
				e.endAnchored.Set(p.offset + q)
			}
		}
	}
	// Cross-tile successor flags (global switch traffic).
	for g := range e.states {
		if m := e.followMask[g]; m.Len() > 0 {
			for q := m.NextSet(0); q >= 0; q = m.NextSet(q + 1) {
				if e.tileOf[q] != e.tileOf[g] {
					e.crossSucc[g] = true
					break
				}
			}
			continue
		}
		for _, q := range e.follow[g] {
			if e.tileOf[q] != e.tileOf[g] {
				e.crossSucc[g] = true
				break
			}
		}
	}
	for c := 0; c < 256; c++ {
		v := bitvec.New(n)
		for g, s := range e.states {
			if s.Class.Contains(byte(c)) {
				v.Set(g)
			}
		}
		e.labels[c] = v
	}
	e.tileMatched = make([]int, e.tiles)
	for i := range plan.Tiles {
		e.totalColumns += plan.Tiles[i].Columns()
	}
	return e, nil
}

// step consumes one symbol. It returns the number of match reports, the
// number of matched (active) states, and the number of matched states
// with cross-tile successors. tileMatched is refreshed as a side effect;
// when onReport is set it receives the regex index of every report.
func (e *nfaArrayEngine) step(b byte, atEnd bool) (matches, matchedStates, crossActive int) {
	e.next.Reset()
	for q := e.active.NextSet(0); q >= 0; q = e.active.NextSet(q + 1) {
		if m := e.followMask[q]; m.Len() > 0 {
			e.next.Or(m)
			continue
		}
		for _, s := range e.follow[q] {
			e.next.Set(int(s))
		}
	}
	e.next.Or(e.initAlways)
	if e.pos == 0 {
		e.next.Or(e.initStart)
	}
	e.next.And(e.labels[b])
	e.active, e.next = e.next, e.active
	e.pos++
	for i := range e.tileMatched {
		e.tileMatched[i] = 0
	}
	for q := e.active.NextSet(0); q >= 0; q = e.active.NextSet(q + 1) {
		e.tileMatched[e.tileOf[q]]++
		matchedStates++
		if e.crossSucc[q] {
			crossActive++
		}
		if e.finals.Get(q) && (!e.endAnchored.Get(q) || atEnd) {
			matches++
			if e.onReport != nil {
				e.onReport(e.regexOf[q])
			}
		}
	}
	return matches, matchedStates, crossActive
}

// --- NBVA array engine ------------------------------------------------

// bvLoc locates one placed chunk of a bit vector: the tile and the
// fraction of that tile's columns its width occupies.
type bvLoc struct {
	tile int
	cols int
}

type nbvaArrayEngine struct {
	runners []*nbva.Runner
	regexes []int
	// stateTiles maps (runner index, machine state) to the tiles holding
	// that state's CC / BV columns (splits span several tiles).
	stateTiles [][][]int
	// bvLocs maps (runner index, machine state) to the placed BV chunks,
	// for charging only the triggered bit vector's columns during the
	// bit-vector-processing phase.
	bvLocs     [][][]bvLoc
	finalMasks []bitvec.Vector
	tiles      int
	onReport   func(regex int)
}

func newNBVAArrayEngine(res *compile.Result, plan *arch.ArrayPlan) (*nbvaArrayEngine, error) {
	e := &nbvaArrayEngine{tiles: len(plan.Tiles)}
	// Pre-index BV allocations per (regex, state).
	bvTiles := map[arch.StateRef][]bvLoc{}
	for ti := range plan.Tiles {
		for _, bv := range plan.Tiles[ti].BVs {
			ref := arch.StateRef{Regex: bv.Regex, State: bv.STE}
			bvTiles[ref] = append(bvTiles[ref], bvLoc{tile: ti, cols: bv.Width})
		}
	}
	for _, ri := range plan.Regexes {
		c := &res.Regexes[ri]
		if c.NBVA == nil {
			return nil, fmt.Errorf("sim: regex %d has no NBVA payload", ri)
		}
		r := nbva.NewRunner(c.NBVA)
		e.runners = append(e.runners, r)
		e.regexes = append(e.regexes, ri)
		tiles := make([][]int, c.NBVA.NumStates())
		locs := make([][]bvLoc, c.NBVA.NumStates())
		for q := range tiles {
			ref := arch.StateRef{Regex: ri, State: q}
			if bls := bvTiles[ref]; len(bls) > 0 {
				locs[q] = bls
				for _, bl := range bls {
					tiles[q] = append(tiles[q], bl.tile)
				}
			} else if t, ok := plan.StateTile[ref]; ok {
				tiles[q] = []int{t}
			} else {
				return nil, fmt.Errorf("sim: no tile for NBVA regex %d state %d", ri, q)
			}
		}
		e.stateTiles = append(e.stateTiles, tiles)
		e.bvLocs = append(e.bvLocs, locs)
		fm := bitvec.New(c.NBVA.NumStates())
		for _, q := range c.NBVA.Final {
			fm.Set(q)
		}
		e.finalMasks = append(e.finalMasks, fm)
	}
	return e, nil
}

// stepResult captures one NBVA array cycle.
type nbvaStep struct {
	matches     int
	tileMatched []int // active STEs per tile (state-matching activity)
	// bvTileCols counts, per tile, the columns of the bit vectors that
	// were actually updated this cycle — the bit-vector-processing phase
	// reads, routes and writes only those columns.
	bvTileCols []int
	anyBV      bool
}

func (e *nbvaArrayEngine) step(b byte, out *nbvaStep) {
	if out.tileMatched == nil {
		out.tileMatched = make([]int, e.tiles)
		out.bvTileCols = make([]int, e.tiles)
	}
	for i := range out.tileMatched {
		out.tileMatched[i] = 0
		out.bvTileCols[i] = 0
	}
	out.matches = 0
	out.anyBV = false
	for i, r := range e.runners {
		r.Step(b)
		out.matches += r.FinalsFired()
		if e.onReport != nil {
			for k := 0; k < r.FinalsFired(); k++ {
				e.onReport(e.regexes[i])
			}
		}
		m := r.MatchedRef()
		for q := m.NextSet(0); q >= 0; q = m.NextSet(q + 1) {
			for _, t := range e.stateTiles[i][q] {
				out.tileMatched[t]++
			}
		}
		for _, q := range r.BVUpdated() {
			out.anyBV = true
			for _, bl := range e.bvLocs[i][q] {
				out.bvTileCols[bl.tile] += bl.cols
			}
		}
	}
}

// --- LNFA array engine ------------------------------------------------

type lnfaBinEngine struct {
	machine    *shiftand.Machine
	bin        *arch.BinPlan
	tileOfBit  []int // packed state -> array tile index
	regexOf    []int // machine pattern index -> compiled regex index
	initTile   int
	regionSize int
}

type lnfaArrayEngine struct {
	bins     []*lnfaBinEngine
	tiles    int
	onReport func(regex int)
}

func newLNFAArrayEngine(res *compile.Result, plan *arch.ArrayPlan) (*lnfaArrayEngine, error) {
	e := &lnfaArrayEngine{tiles: len(plan.Tiles)}
	for bi := range plan.Bins {
		bin := &plan.Bins[bi]
		var pats []shiftand.Pattern
		var tileOfBit []int
		var regexOf []int
		region := mapper.RegionSize(bin)
		for _, ref := range bin.Seqs {
			c := &res.Regexes[ref[0]]
			if ref[1] >= len(c.Seqs) {
				return nil, fmt.Errorf("sim: bad sequence ref %v", ref)
			}
			seq := c.Seqs[ref[1]]
			pats = append(pats, shiftand.Pattern(seq.Classes))
			regexOf = append(regexOf, ref[0])
			for j := range seq.Classes {
				ti := (bin.StartOffset + j) / region
				if ti >= len(bin.Tiles) {
					ti = len(bin.Tiles) - 1
				}
				tileOfBit = append(tileOfBit, bin.Tiles[ti])
			}
		}
		m, err := shiftand.New(pats)
		if err != nil {
			return nil, err
		}
		e.bins = append(e.bins, &lnfaBinEngine{
			machine:    m,
			bin:        bin,
			tileOfBit:  tileOfBit,
			regexOf:    regexOf,
			initTile:   bin.Tiles[0],
			regionSize: region,
		})
	}
	return e, nil
}

type lnfaStep struct {
	matches    int
	tileActive []int // active states per tile
	ringHops   int   // active states sitting at a region boundary
	// initTiles maps tile -> number of initial-state columns there (the
	// first state of every bin member leads in the bin's first tile and
	// is searched every cycle).
	initTiles   map[int]int
	camTiles    map[int]bool // active tiles that are CAM-mapped
	switchTiles map[int]bool
}

func (e *lnfaArrayEngine) step(b byte, out *lnfaStep) {
	if out.tileActive == nil {
		out.tileActive = make([]int, e.tiles)
		out.initTiles = map[int]int{}
		out.camTiles = map[int]bool{}
		out.switchTiles = map[int]bool{}
	}
	for i := range out.tileActive {
		out.tileActive[i] = 0
	}
	for k := range out.initTiles {
		delete(out.initTiles, k)
	}

	for k := range out.camTiles {
		delete(out.camTiles, k)
	}
	for k := range out.switchTiles {
		delete(out.switchTiles, k)
	}
	out.matches = 0
	out.ringHops = 0
	for _, be := range e.bins {
		fired := be.machine.Step(b)
		out.matches += len(fired)
		if e.onReport != nil {
			for _, pi := range fired {
				e.onReport(be.regexOf[pi])
			}
		}
		out.initTiles[be.initTile] += be.machine.NumPatterns()
		markActive := func(t int) {
			out.tileActive[t]++
			if be.bin.CAMMapped {
				out.camTiles[t] = true
			} else {
				out.switchTiles[t] = true
			}
		}
		// The bin-leading tile performs state matching every cycle.
		if be.bin.CAMMapped {
			out.camTiles[be.initTile] = true
		} else {
			out.switchTiles[be.initTile] = true
		}
		states := be.machine.StatesRef()
		for q := states.NextSet(0); q >= 0; q = states.NextSet(q + 1) {
			t := be.tileOfBit[q]
			markActive(t)
			// Local index within the member determines region position;
			// states at a region boundary hop the ring next cycle.
			local := q - patternStartFor(be.machine, q)
			if (be.bin.StartOffset+local+1)%be.regionSize == 0 {
				out.ringHops++
			}
		}
	}
}

// patternStartFor finds the packed start offset of the pattern containing
// bit q via binary search over pattern starts.
func patternStartFor(m *shiftand.Machine, q int) int {
	lo, hi := 0, m.NumPatterns()-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if m.PatternStart(mid) <= q {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return m.PatternStart(lo)
}
