package sim

import (
	"testing"

	"repro/internal/compile"
	"repro/internal/mapper"
	"repro/internal/workload"
)

// Microbenchmarks for the cycle-level engines: cost per simulated input
// character for each tile mode and each baseline.

func benchSetup(b *testing.B, name string, scale float64) (*compile.Result, []byte) {
	b.Helper()
	d := workload.MustGenerate(name, scale, 1)
	res := compile.Compile(d.Patterns, compile.Options{})
	if len(res.Errors) != 0 {
		b.Fatal(res.Errors[0])
	}
	return res, d.Input(16384, 2)
}

func BenchmarkSimulateRAPSnort(b *testing.B) {
	res, input := benchSetup(b, "Snort", 0.3)
	p, err := mapper.Map(res, mapper.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateRAP(res, p, input); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateRAPLNFAOnly(b *testing.B) {
	res, input := benchSetup(b, "Prosite", 0.3)
	p, err := mapper.Map(res, mapper.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateRAP(res, p, input); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateCAMA(b *testing.B) {
	d := workload.MustGenerate("Snort", 0.3, 1)
	res := compile.Compile(d.Patterns, compile.Options{ModePolicy: compile.ForceNFA})
	if len(res.Errors) != 0 {
		b.Fatal(res.Errors[0])
	}
	p, err := mapper.Map(res, mapper.Options{})
	if err != nil {
		b.Fatal(err)
	}
	input := d.Input(16384, 2)
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateBaseline("CAMA", res, p, input); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMapSnort(b *testing.B) {
	d := workload.MustGenerate("Snort", 0.5, 1)
	res := compile.Compile(d.Patterns, compile.Options{})
	if len(res.Errors) != 0 {
		b.Fatal(res.Errors[0])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mapper.Map(res, mapper.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompileSnort(b *testing.B) {
	d := workload.MustGenerate("Snort", 0.5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := compile.Compile(d.Patterns, compile.Options{})
		if len(res.Errors) != 0 {
			b.Fatal(res.Errors[0])
		}
	}
}
