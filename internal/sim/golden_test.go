package sim

import (
	"math"
	"testing"

	"repro/internal/compile"
	"repro/internal/mapper"
)

// Golden tests lock the derived hardware-model quantities against
// accidental drift: these values are calibrated against the paper's
// tables (see constants.go comments), so a change that moves them should
// be deliberate.

func TestGoldenTileAreas(t *testing.T) {
	if camaTileAreaUM2 != 8281 {
		t.Errorf("CAMA tile = %v µm², calibration expects 8281", camaTileAreaUM2)
	}
	if rapTileAreaUM2 != 9731 {
		t.Errorf("RAP tile = %v µm², calibration expects 9731 (shared controller)", rapTileAreaUM2)
	}
	if caTileAreaUM2 != 16965 {
		t.Errorf("CA tile = %v µm²", caTileAreaUM2)
	}
	// Table 2 RegexLib NFA/CAMA area ratio ≈ 1.19.
	ratio := float64(rapTileAreaUM2) / float64(camaTileAreaUM2)
	if math.Abs(ratio-1.175) > 0.01 {
		t.Errorf("RAP:CAMA tile ratio = %.3f, want ≈1.175", ratio)
	}
}

func TestGoldenBVAPProvisioning(t *testing.T) {
	if bvapBVsPerTile*bvapBVBits != 2048 {
		t.Errorf("BVM capacity = %d bits", bvapBVsPerTile*bvapBVBits)
	}
	if bvapStallCycles != 4 {
		t.Errorf("BVAP stall = %d", bvapStallCycles)
	}
}

func TestGoldenSingleTileAreaBreakdown(t *testing.T) {
	// One linear pattern -> 1 LNFA tile + 1 array overhead + 1 bank IO.
	res := compile.Compile([]string{"abcdef"}, compile.Options{})
	p, err := mapper.Map(res, mapper.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := RAPArea(p)
	wantTiles := 9731e-6
	if math.Abs(a.Tiles-wantTiles) > 1e-9 {
		t.Errorf("tile area = %v, want %v", a.Tiles, wantTiles)
	}
	wantGS := 18153e-6
	if math.Abs(a.GlobalSwitch-wantGS) > 1e-9 {
		t.Errorf("global switch = %v", a.GlobalSwitch)
	}
	if a.Controller != 1400e-6 || a.IO != 2000e-6 {
		t.Errorf("controller %v, IO %v", a.Controller, a.IO)
	}
}

func TestGoldenClockAndThroughput(t *testing.T) {
	res := compile.Compile([]string{"abcdef"}, compile.Options{})
	p, _ := mapper.Map(res, mapper.Options{})
	rep, err := SimulateRAP(res, p, make([]byte, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if rep.ThroughputGchS() != 2.08 {
		t.Errorf("stall-free throughput = %v, want 2.08", rep.ThroughputGchS())
	}
	if clockFor("CAMA") != 2.14 || clockFor("CA") != 1.82 || clockFor("BVAP") != 2.0 {
		t.Error("baseline clocks drifted")
	}
}
