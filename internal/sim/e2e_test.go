package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/mapper"
	"repro/internal/refmatch"
	"repro/internal/workload"
)

// TestE2EAllArchitecturesAgree is the repository-wide consistency check
// (§5.2's Hyperscan methodology): for every synthetic benchmark, the RAP
// cycle simulator in its native mode mix, the all-NFA RAP configuration,
// CAMA, CA, BVAP, and the software reference matcher must report the
// exact same number of matches.
func TestE2EAllArchitecturesAgree(t *testing.T) {
	for _, name := range workload.Names {
		name := name
		t.Run(name, func(t *testing.T) {
			d := workload.MustGenerate(name, 0.12, 77)
			input := d.Input(8000, 5)

			ref, err := refmatch.Compile(context.Background(), d.Patterns, refmatch.Options{})
			if err != nil {
				t.Fatal(err)
			}
			want := int64(ref.Count(input))

			// RAP native.
			res := compile.Compile(d.Patterns, compile.Options{})
			if len(res.Errors) != 0 {
				t.Fatal(res.Errors[0])
			}
			p, err := mapper.Map(res, mapper.Options{})
			if err != nil {
				t.Fatal(err)
			}
			rap, err := SimulateRAP(res, p, input)
			if err != nil {
				t.Fatal(err)
			}
			if rap.Matches != want {
				t.Errorf("RAP = %d, reference = %d", rap.Matches, want)
			}

			// All-NFA on RAP, CAMA, CA.
			resNFA := compile.Compile(d.Patterns, compile.Options{ModePolicy: compile.ForceNFA})
			if len(resNFA.Errors) != 0 {
				t.Fatal(resNFA.Errors[0])
			}
			pNFA, err := mapper.Map(resNFA, mapper.Options{})
			if err != nil {
				t.Fatal(err)
			}
			rapNFA, err := SimulateRAP(resNFA, pNFA, input)
			if err != nil {
				t.Fatal(err)
			}
			if rapNFA.Matches != want {
				t.Errorf("RAP-NFA = %d, reference = %d", rapNFA.Matches, want)
			}
			for _, archName := range []string{"CAMA", "CA"} {
				rep, err := SimulateBaseline(archName, resNFA, pNFA, input)
				if err != nil {
					t.Fatal(err)
				}
				if rep.Matches != want {
					t.Errorf("%s = %d, reference = %d", archName, rep.Matches, want)
				}
			}

			// BVAP.
			resBV := compile.Compile(d.Patterns, compile.Options{ModePolicy: compile.AllowNBVA})
			if len(resBV.Errors) != 0 {
				t.Fatal(resBV.Errors[0])
			}
			pBV, err := MapBVAP(resBV)
			if err != nil {
				t.Fatal(err)
			}
			bvap, err := SimulateBVAP(resBV, pBV, input)
			if err != nil {
				t.Fatal(err)
			}
			if bvap.Matches != want {
				t.Errorf("BVAP = %d, reference = %d", bvap.Matches, want)
			}
		})
	}
}

// TestE2EParameterSweepInvariance: matches must not depend on the
// hardware parameters (depth, bin size) — only energy/area/cycles may.
func TestE2EParameterSweepInvariance(t *testing.T) {
	d := workload.MustGenerate("Suricata", 0.12, 21)
	input := d.Input(6000, 9)
	res := compile.Compile(d.Patterns, compile.Options{})
	if len(res.Errors) != 0 {
		t.Fatal(res.Errors[0])
	}
	var want int64 = -1
	for _, depth := range []int{4, 8, 16, 32} {
		for _, bin := range []int{1, 8, 32} {
			p, err := mapper.Map(res, mapper.Options{Depth: depth, BinSize: bin})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := SimulateRAP(res, p, input)
			if err != nil {
				t.Fatal(err)
			}
			if want < 0 {
				want = rep.Matches
			} else if rep.Matches != want {
				t.Errorf("depth %d bin %d: matches %d != %d", depth, bin, rep.Matches, want)
			}
		}
	}
	if want <= 0 {
		t.Error("sweep found no matches at all")
	}
}

// TestE2EEnergyScalesWithInput: doubling the input roughly doubles the
// dynamic energy (within slack for planted-match placement variance) and
// never decreases it.
func TestE2EEnergyScalesWithInput(t *testing.T) {
	d := workload.MustGenerate("Snort", 0.12, 13)
	res := compile.Compile(d.Patterns, compile.Options{})
	p, err := mapper.Map(res, mapper.Options{})
	if err != nil {
		t.Fatal(err)
	}
	shortRep, err := SimulateRAP(res, p, d.Input(4000, 2))
	if err != nil {
		t.Fatal(err)
	}
	longRep, err := SimulateRAP(res, p, d.Input(8000, 2))
	if err != nil {
		t.Fatal(err)
	}
	ratio := longRep.Energy.TotalPJ() / shortRep.Energy.TotalPJ()
	if ratio < 1.5 || ratio > 2.6 {
		t.Errorf("energy ratio for 2x input = %v", ratio)
	}
	if longRep.Area.TotalMM2() != shortRep.Area.TotalMM2() {
		t.Error("area changed with input length")
	}
}

func TestIOInterruptAccounting(t *testing.T) {
	// A pattern that matches constantly drives the output buffer.
	res := compile.Compile([]string{"a"}, compile.Options{})
	p, err := mapper.Map(res, mapper.Options{})
	if err != nil {
		t.Fatal(err)
	}
	input := make([]byte, 1000)
	for i := range input {
		input[i] = 'a'
	}
	rep, err := SimulateRAP(res, p, input)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matches != 1000 {
		t.Fatalf("matches = %d", rep.Matches)
	}
	// 1000 reports / 64-entry buffer -> 16 interrupts.
	if rep.IOInterrupts != 16 {
		t.Errorf("interrupts = %d, want 16", rep.IOInterrupts)
	}
	// No matches, no interrupts.
	quiet, err := SimulateRAP(res, p, make([]byte, 100))
	if err != nil {
		t.Fatal(err)
	}
	if quiet.IOInterrupts != 0 {
		t.Errorf("quiet interrupts = %d", quiet.IOInterrupts)
	}
}

func TestMultiFinalCountingConsistent(t *testing.T) {
	// a.d? fires two reporting STEs at the same offset on "aad" (the
	// 3-symbol match via '.' and the exact 'd' match). Hardware counts
	// one report per reporting STE; every engine must agree.
	patterns := []string{"a.d?"}
	input := []byte("xxaadxx")
	want := refCount(t, patterns, input)

	rap := pipeline(t, patterns, mapper.Options{}, input)
	if rap.Matches != want {
		t.Errorf("RAP = %d, reference = %d", rap.Matches, want)
	}
	resNFA := compile.Compile(patterns, compile.Options{ModePolicy: compile.ForceNFA})
	pNFA, err := mapper.Map(resNFA, mapper.Options{})
	if err != nil {
		t.Fatal(err)
	}
	nfaRep, err := SimulateRAP(resNFA, pNFA, input)
	if err != nil {
		t.Fatal(err)
	}
	if nfaRep.Matches != want {
		t.Errorf("RAP-NFA = %d, reference = %d", nfaRep.Matches, want)
	}
	// Sanity: the offset where both finals fire contributes two reports.
	if want < 2 {
		t.Errorf("expected a double-report offset, got %d total", want)
	}
}

func TestMultiFinalNBVAConsistent(t *testing.T) {
	// Multi-final NBVA machine: x{20}(a|.) has finals 'a' and '.' which
	// can fire simultaneously on input 'a'.
	patterns := []string{"x{20}(a|.)"}
	input := append(bytesRepeat('x', 25), 'a', 'z')
	want := refCount(t, patterns, input)
	rap := pipeline(t, patterns, mapper.Options{}, input)
	if rap.Matches != want {
		t.Errorf("RAP = %d, reference = %d", rap.Matches, want)
	}
}

func bytesRepeat(b byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = b
	}
	return out
}

func TestPerRegexAttribution(t *testing.T) {
	patterns := []string{"cat", "d{20}g", "a(x|y)*b"}
	input := append(makeInput(31, 2000, "cdxyab "), []byte(" cat "+strings.Repeat("d", 20)+"g axyxb")...)
	rep := pipeline(t, patterns, mapper.Options{}, input)
	var sum int64
	for ri, n := range rep.PerRegex {
		if ri < 0 || ri >= len(patterns) {
			t.Errorf("attribution to unknown regex %d", ri)
		}
		sum += n
	}
	if sum != rep.Matches {
		t.Errorf("per-regex sum %d != total %d", sum, rep.Matches)
	}
	for ri := range patterns {
		if rep.PerRegex[ri] == 0 {
			t.Errorf("pattern %d (%s) never attributed", ri, patterns[ri])
		}
	}
}

func TestTraceEvents(t *testing.T) {
	patterns := []string{"cat", "d{20}g"}
	input := append(makeInput(41, 500, "xy "), []byte(" cat "+strings.Repeat("d", 20)+"g")...)
	res := compile.Compile(patterns, compile.Options{})
	p, err := mapper.Map(res, mapper.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Trace(res, p, input, &buf); err != nil {
		t.Fatal(err)
	}
	var matchEvents, bvEvents int
	var totalMatches int64
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var ev TraceEvent
		if err := dec.Decode(&ev); err != nil {
			t.Fatal(err)
		}
		if ev.Matches > 0 {
			matchEvents++
			totalMatches += int64(ev.Matches)
		}
		if ev.BVPhase {
			bvEvents++
			if ev.Stall == 0 {
				t.Error("BV phase with zero stall")
			}
		}
		if ev.Offset < 0 || ev.Offset >= int64(len(input)) {
			t.Errorf("offset %d out of range", ev.Offset)
		}
	}
	if matchEvents == 0 || bvEvents == 0 {
		t.Errorf("events: %d match, %d bv", matchEvents, bvEvents)
	}
	// Trace totals must agree with the simulator.
	rep, err := SimulateRAP(res, p, input)
	if err != nil {
		t.Fatal(err)
	}
	if totalMatches != rep.Matches {
		t.Errorf("trace matches %d != sim %d", totalMatches, rep.Matches)
	}
}

func TestE2EAnchoredPatterns(t *testing.T) {
	patterns := []string{"^hello", "world$", "^exact$", "plain"}
	inputs := [][]byte{
		[]byte("hello world"),
		[]byte("say hello world"),
		[]byte("exact"),
		[]byte("not exact here plain"),
		[]byte("worldly plain hello"),
	}
	ref, err := refmatch.Compile(context.Background(), patterns, refmatch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := compile.Compile(patterns, compile.Options{})
	if len(res.Errors) != 0 {
		t.Fatal(res.Errors[0])
	}
	p, err := mapper.Map(res, mapper.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, input := range inputs {
		rep, err := SimulateRAP(res, p, input)
		if err != nil {
			t.Fatal(err)
		}
		want := int64(ref.Count(input))
		if rep.Matches != want {
			t.Errorf("input %q: sim %d, reference %d", input, rep.Matches, want)
		}
	}
}
