package sim

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/compile"
	"repro/internal/hwmodel"
	"repro/internal/stream"
)

// ringHopMM is the wire length of one LNFA ring hop between adjacent
// tiles (§3.2: "the ring connects adjacent tiles with global wires over a
// short distance").
const ringHopMM = 0.1

// SimulateRAP executes a RAP placement over the input stream and returns
// the full report: energy from per-cycle activity, area from the
// placement, throughput from stall-aware cycle counts.
func SimulateRAP(res *compile.Result, p *arch.Placement, input []byte) (*Report, error) {
	rep := &Report{
		Arch: "RAP", Chars: int64(len(input)), ClockGHz: hwmodel.ClockRAPGHz,
		PerRegex: map[int]int64{},
	}
	var maxCycles int64
	// NBVA arrays within one bank share the input stream through the
	// two-level buffering of §3.3; their joint cycle count comes from the
	// windowed model rather than each array alone.
	var bankTraces []stream.StallTrace
	flushBank := func() {
		if len(bankTraces) == 0 {
			return
		}
		cycles := stream.WindowedCycles(bankTraces, len(input), stream.DefaultWindow)
		if cycles > maxCycles {
			maxCycles = cycles
		}
		bankTraces = bankTraces[:0]
	}
	for ai := range p.Arrays {
		plan := &p.Arrays[ai]
		var cycles int64
		var err error
		switch plan.Mode {
		case arch.ModeNFA:
			cycles, err = runRAPNFAArray(rep, res, plan, input)
		case arch.ModeNBVA:
			var tr stream.StallTrace
			cycles, tr, err = runRAPNBVAArray(rep, res, plan, input)
			if err == nil {
				bankTraces = append(bankTraces, tr)
				if len(bankTraces) == arch.ArraysPerBank {
					flushBank()
				}
				cycles = 0 // throughput handled by the bank model
			}
		case arch.ModeLNFA:
			cycles, err = runRAPLNFAArray(rep, res, plan, input)
		default:
			err = fmt.Errorf("sim: unknown mode %v", plan.Mode)
		}
		if err != nil {
			return nil, err
		}
		if cycles > maxCycles {
			maxCycles = cycles
		}
	}
	flushBank()
	if maxCycles == 0 {
		maxCycles = int64(len(input))
	}
	rep.Cycles = maxCycles
	rep.Area = rapArea(p)
	// Output path (§3.3): match reports drain through the 64-entry Bank
	// Output Buffer; each fill raises a host interrupt. With the match
	// counts known, the interrupt count is the report total over the
	// buffer capacity per bank (the arbiter serializes arrays onto one
	// buffer per bank).
	banks := int64(p.Banks())
	if banks > 0 && rep.Matches > 0 {
		perBank := (rep.Matches + banks - 1) / banks
		rep.IOInterrupts = banks * ((perBank + arch.BankOutputBufferEntries - 1) / arch.BankOutputBufferEntries)
	}
	finishReport(rep, "RAP", p)
	return rep, nil
}

// finishReport adds leakage and I/O energy, which depend on total time.
func finishReport(rep *Report, archName string, p *arch.Placement) {
	rep.Energy.Leakage = leakagePowerW(archName, p) * rep.TimeSeconds() * 1e12
	rep.Energy.Wire += float64(rep.Chars) * float64(p.Banks()) * ioEnergyPerCharPJ
}

// runRAPNFAArray simulates one NFA-mode array: CAM search + crossbar
// transition every cycle on every used tile, plus the local controller
// that is RAP's reconfigurability overhead over CAMA (§5.4).
func runRAPNFAArray(rep *Report, res *compile.Result, plan *arch.ArrayPlan, input []byte) (int64, error) {
	e, err := newNFAArrayEngine(res, plan)
	if err != nil {
		return 0, err
	}
	e.onReport = func(ri int) { rep.PerRegex[ri]++ }
	usedTiles := usedTileIndices(plan)
	colsFrac := make([]float64, len(plan.Tiles))
	for _, t := range usedTiles {
		colsFrac[t] = float64(plan.Tiles[t].Columns()) / float64(arch.TileSTEs)
	}
	crossEdges := plan.CrossTileEdges > 0
	var en EnergyBreakdown
	for i, b := range input {
		matches, _, crossActive := e.step(b, i == len(input)-1)
		rep.Matches += int64(matches)
		for _, t := range usedTiles {
			en.CAM += hwmodel.CAM.AccessEnergyPJ(1) * colsFrac[t]
			en.LocalSwitch += hwmodel.SRAM128.AccessEnergyPJ(float64(e.tileMatched[t]) / float64(arch.TileSTEs))
			en.Controller += hwmodel.LocalController.AccessEnergyPJ(1)
		}
		en.Controller += hwmodel.GlobalController.AccessEnergyPJ(1)
		if crossEdges {
			en.GlobalSwitch += hwmodel.SRAM256.AccessEnergyPJ(float64(crossActive) / 256)
			en.Wire += float64(crossActive) * hwmodel.GlobalWireMMPerHop * hwmodel.GlobalWire.AccessEnergyPJ(1)
		}
	}
	rep.Energy.Add(en)
	return int64(len(input)), nil
}

// runRAPNBVAArray simulates one NBVA-mode array: state matching activates
// only the CC columns; a triggered bit-vector-processing phase stalls the
// array for depth cycles and charges CAM read/write plus switch routing on
// the tiles with active BVs (§3.1). It returns the array's own cycle
// count and its stall trace for the bank-level buffering model.
func runRAPNBVAArray(rep *Report, res *compile.Result, plan *arch.ArrayPlan, input []byte) (int64, stream.StallTrace, error) {
	e, err := newNBVAArrayEngine(res, plan)
	if err != nil {
		return 0, nil, err
	}
	e.onReport = func(ri int) { rep.PerRegex[ri]++ }
	usedTiles := usedTileIndices(plan)
	ccFrac := make([]float64, len(plan.Tiles))
	for _, t := range usedTiles {
		tp := &plan.Tiles[t]
		ccFrac[t] = float64(tp.CCColumns+tp.InitColumns) / float64(arch.TileSTEs)
	}
	depth := plan.Depth
	var en EnergyBreakdown
	var st nbvaStep
	trace := make(stream.StallTrace, len(input))
	cycles := int64(0)
	for k, b := range input {
		e.step(b, &st)
		rep.Matches += int64(st.matches)
		cycles++
		for _, t := range usedTiles {
			en.CAM += hwmodel.CAM.AccessEnergyPJ(1) * ccFrac[t]
			en.LocalSwitch += hwmodel.SRAM128.AccessEnergyPJ(float64(st.tileMatched[t]) / float64(arch.TileSTEs))
			en.Controller += hwmodel.LocalController.AccessEnergyPJ(1)
		}
		en.Controller += hwmodel.GlobalController.AccessEnergyPJ(1)
		if st.anyBV {
			// Bit-vector-processing phase: depth cycles, array stalled,
			// tiles without active BVs disabled (§3.3). Only the columns
			// of the bit vectors that actually updated are read, routed
			// and written back.
			cycles += int64(depth)
			rep.StallCycles += int64(depth)
			trace[k] = uint16(depth)
			for _, t := range usedTiles {
				if st.bvTileCols[t] == 0 {
					continue
				}
				frac := float64(st.bvTileCols[t]) / float64(arch.TileSTEs)
				if frac > 1 {
					frac = 1
				}
				for d := 0; d < depth; d++ {
					// read + write of one BV word across the active BV
					// columns, routed through the local switch.
					en.CAM += 2 * hwmodel.CAM.AccessEnergyPJ(1) * frac
					en.LocalSwitch += hwmodel.SRAM128.AccessEnergyPJ(frac)
					en.Controller += hwmodel.LocalController.AccessEnergyPJ(1)
				}
			}
		}
	}
	rep.Energy.Add(en)
	return cycles, trace, nil
}

// runRAPLNFAArray simulates one LNFA-mode array: Shift-And in the active
// vector, column-gated CAM searches, power-gated tiles without initial or
// active states (§3.2), and ring routing between adjacent tiles.
func runRAPLNFAArray(rep *Report, res *compile.Result, plan *arch.ArrayPlan, input []byte) (int64, error) {
	e, err := newLNFAArrayEngine(res, plan)
	if err != nil {
		return 0, err
	}
	e.onReport = func(ri int) { rep.PerRegex[ri]++ }
	usedTiles := usedTileIndices(plan)
	var en EnergyBreakdown
	var st lnfaStep
	for _, b := range input {
		e.step(b, &st)
		rep.Matches += int64(st.matches)
		rep.LNFATileCycles += int64(len(usedTiles))
		for t := range plan.Tiles {
			activeStates := st.tileActive[t]
			initCols := st.initTiles[t]
			if activeStates == 0 && initCols == 0 {
				if plan.Tiles[t].LNFAUsed() > 0 {
					rep.GatedTileCycles++
				}
				continue // power-gated
			}
			// Every bin-leading initial column is searched every cycle.
			cols := activeStates + initCols
			if st.camTiles[t] {
				en.CAM += hwmodel.CAM.AccessEnergyPJ(1) * float64(cols) / float64(arch.TileSTEs)
			}
			if st.switchTiles[t] {
				// One-hot matching drives a single row of the local switch.
				en.LocalSwitch += hwmodel.SRAM128.AccessEnergyPJ(1.0 / float64(arch.TileSTEs))
			}
			en.Controller += hwmodel.LocalController.AccessEnergyPJ(1)
		}
		en.Controller += hwmodel.GlobalController.AccessEnergyPJ(1)
		en.Wire += float64(st.ringHops) * ringHopMM * hwmodel.GlobalWire.AccessEnergyPJ(1)
	}
	rep.Energy.Add(en)
	return int64(len(input)), nil
}

func usedTileIndices(plan *arch.ArrayPlan) []int {
	var out []int
	for i := range plan.Tiles {
		t := &plan.Tiles[i]
		if t.Columns() > 0 || t.LNFAUsed() > 0 {
			out = append(out, i)
		}
	}
	return out
}
