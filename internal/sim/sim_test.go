package sim

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/mapper"
	"repro/internal/refmatch"
)

// pipeline compiles, maps and simulates a pattern set on RAP.
func pipeline(t *testing.T, patterns []string, mopts mapper.Options, input []byte) *Report {
	t.Helper()
	res := compile.Compile(patterns, compile.Options{})
	if len(res.Errors) != 0 {
		t.Fatalf("compile: %v", res.Errors)
	}
	p, err := mapper.Map(res, mopts)
	if err != nil {
		t.Fatalf("map: %v", err)
	}
	rep, err := SimulateRAP(res, p, input)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	return rep
}

func refCount(t *testing.T, patterns []string, input []byte) int64 {
	t.Helper()
	m, err := refmatch.Compile(context.Background(), patterns, refmatch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return int64(m.Count(input))
}

func makeInput(seed int64, n int, alphabet string) []byte {
	r := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	for i := range out {
		out[i] = alphabet[r.Intn(len(alphabet))]
	}
	return out
}

func TestRAPMatchesAgreeWithReference(t *testing.T) {
	// The §5.2 consistency check: cycle simulator vs software matcher.
	patterns := []string{
		"cat", "d{3}g", "a(x|y)*b", "ab{5,20}c", "q[rs]t",
		"hello", "w{30}", "m.n", "[0-9]{4}", "zz*y",
	}
	input := append(makeInput(1, 5000, "abcdxyzq rst0123"), []byte(
		"cat dddg axyxb a"+strings.Repeat("b", 7)+"c qrt hello "+
			strings.Repeat("w", 30)+" m-n 2024 zzzy")...)
	rep := pipeline(t, patterns, mapper.Options{}, input)
	want := refCount(t, patterns, input)
	if rep.Matches != want {
		t.Errorf("RAP matches = %d, reference = %d", rep.Matches, want)
	}
	if rep.Matches == 0 {
		t.Error("expected at least one match")
	}
}

func TestBaselinesMatchReference(t *testing.T) {
	patterns := []string{"cat", "ab{5,20}c", "x(y|z)w", "m{12}"}
	input := append(makeInput(2, 3000, "abcxyzwm t"),
		[]byte(" cat a"+strings.Repeat("b", 9)+"c xyw "+strings.Repeat("m", 12))...)
	want := refCount(t, patterns, input)

	// CAMA / CA on all-NFA compile.
	resNFA := compile.Compile(patterns, compile.Options{ModePolicy: compile.ForceNFA})
	if len(resNFA.Errors) != 0 {
		t.Fatal(resNFA.Errors)
	}
	pNFA, err := mapper.Map(resNFA, mapper.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, archName := range []string{"CAMA", "CA"} {
		rep, err := SimulateBaseline(archName, resNFA, pNFA, input)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Matches != want {
			t.Errorf("%s matches = %d, want %d", archName, rep.Matches, want)
		}
	}

	// BVAP on no-LNFA compile.
	resBV := compile.Compile(patterns, compile.Options{ModePolicy: compile.AllowNBVA})
	if len(resBV.Errors) != 0 {
		t.Fatal(resBV.Errors)
	}
	pBV, err := MapBVAP(resBV)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := SimulateBVAP(resBV, pBV, input)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matches != want {
		t.Errorf("BVAP matches = %d, want %d", rep.Matches, want)
	}
}

func TestNBVAModeBeatsNFAModeOnBoundedRepetitions(t *testing.T) {
	// Table 2 shape: for BV-heavy patterns, RAP NBVA mode uses less
	// energy and area than unfolding to NFA mode.
	patterns := []string{
		"ab{200}c", "x{150}y", "p{100,300}q", "m{250}", "k{0,180}j",
	}
	input := makeInput(3, 20000, "abcxypqmkj ")

	nbvaRep := pipeline(t, patterns, mapper.Options{Depth: 8}, input)

	resNFA := compile.Compile(patterns, compile.Options{ModePolicy: compile.ForceNFA})
	if len(resNFA.Errors) != 0 {
		t.Fatal(resNFA.Errors)
	}
	pNFA, err := mapper.Map(resNFA, mapper.Options{})
	if err != nil {
		t.Fatal(err)
	}
	nfaRep, err := SimulateRAP(resNFA, pNFA, input)
	if err != nil {
		t.Fatal(err)
	}

	if nbvaRep.Energy.TotalPJ() >= nfaRep.Energy.TotalPJ() {
		t.Errorf("NBVA energy %.0f pJ >= NFA energy %.0f pJ", nbvaRep.Energy.TotalPJ(), nfaRep.Energy.TotalPJ())
	}
	if nbvaRep.Area.TotalMM2() >= nfaRep.Area.TotalMM2() {
		t.Errorf("NBVA area %.4f >= NFA area %.4f", nbvaRep.Area.TotalMM2(), nfaRep.Area.TotalMM2())
	}
	if nbvaRep.ThroughputGchS() > nfaRep.ThroughputGchS() {
		t.Errorf("NBVA throughput %.2f should not exceed NFA %.2f",
			nbvaRep.ThroughputGchS(), nfaRep.ThroughputGchS())
	}
	if nbvaRep.Matches != nfaRep.Matches {
		t.Errorf("mode disagreement: NBVA %d matches, NFA %d", nbvaRep.Matches, nfaRep.Matches)
	}
}

func TestLNFAModeBeatsNFAMode(t *testing.T) {
	// Table 3 shape: LNFA mode energy << NFA mode for linear patterns.
	var patterns []string
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 24; i++ {
		var sb strings.Builder
		for j := 0; j < 8+r.Intn(8); j++ {
			sb.WriteByte(byte('a' + r.Intn(6)))
		}
		patterns = append(patterns, sb.String())
	}
	input := makeInput(5, 20000, "abcdef")

	lnfaRep := pipeline(t, patterns, mapper.Options{BinSize: 8}, input)

	resNFA := compile.Compile(patterns, compile.Options{ModePolicy: compile.ForceNFA})
	pNFA, err := mapper.Map(resNFA, mapper.Options{})
	if err != nil {
		t.Fatal(err)
	}
	nfaRep, err := SimulateRAP(resNFA, pNFA, input)
	if err != nil {
		t.Fatal(err)
	}
	if lnfaRep.Energy.TotalPJ() >= nfaRep.Energy.TotalPJ() {
		t.Errorf("LNFA energy %.0f >= NFA energy %.0f", lnfaRep.Energy.TotalPJ(), nfaRep.Energy.TotalPJ())
	}
	if lnfaRep.ThroughputGchS() != nfaRep.ThroughputGchS() {
		t.Errorf("LNFA and NFA throughput should match: %.2f vs %.2f",
			lnfaRep.ThroughputGchS(), nfaRep.ThroughputGchS())
	}
	if lnfaRep.Matches != nfaRep.Matches {
		t.Errorf("mode disagreement: LNFA %d, NFA %d", lnfaRep.Matches, nfaRep.Matches)
	}
}

func TestDepthTradeoff(t *testing.T) {
	// Fig 10(a) shape: deeper BVs -> smaller area, lower throughput when
	// BVs trigger often.
	patterns := []string{"a{100}b"}
	input := makeInput(6, 10000, "ab") // 'a'-rich input triggers BVs constantly

	rep4 := pipeline(t, patterns, mapper.Options{Depth: 4}, input)
	rep32 := pipeline(t, patterns, mapper.Options{Depth: 32}, input)

	if rep32.Area.TotalMM2() > rep4.Area.TotalMM2() {
		t.Errorf("depth 32 area %.4f > depth 4 area %.4f", rep32.Area.TotalMM2(), rep4.Area.TotalMM2())
	}
	if rep32.ThroughputGchS() >= rep4.ThroughputGchS() {
		t.Errorf("depth 32 throughput %.3f >= depth 4 %.3f",
			rep32.ThroughputGchS(), rep4.ThroughputGchS())
	}
	if rep32.StallCycles <= rep4.StallCycles {
		t.Errorf("stalls: depth32 %d <= depth4 %d", rep32.StallCycles, rep4.StallCycles)
	}
}

func TestBinningSavesEnergy(t *testing.T) {
	// Fig 10(b) shape: larger bins concentrate initial states and gate
	// more tiles.
	var patterns []string
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 32; i++ {
		var sb strings.Builder
		for j := 0; j < 12; j++ {
			sb.WriteByte(byte('a' + r.Intn(8)))
		}
		patterns = append(patterns, sb.String())
	}
	input := makeInput(8, 10000, "abcdefgh")
	rep1 := pipeline(t, patterns, mapper.Options{BinSize: 1}, input)
	rep16 := pipeline(t, patterns, mapper.Options{BinSize: 16}, input)
	if rep16.Energy.TotalPJ() >= rep1.Energy.TotalPJ() {
		t.Errorf("bin16 energy %.0f >= bin1 energy %.0f", rep16.Energy.TotalPJ(), rep1.Energy.TotalPJ())
	}
	if rep16.Matches != rep1.Matches {
		t.Errorf("binning changed matches: %d vs %d", rep16.Matches, rep1.Matches)
	}
}

func TestStallsReduceThroughput(t *testing.T) {
	patterns := []string{"a{50}b"}
	quiet := makeInput(9, 5000, "xyz") // never triggers the BV
	busy := makeInput(10, 5000, "a")   // always triggers

	repQuiet := pipeline(t, patterns, mapper.Options{Depth: 8}, quiet)
	repBusy := pipeline(t, patterns, mapper.Options{Depth: 8}, busy)
	if repQuiet.StallCycles != 0 {
		t.Errorf("quiet input stalls = %d", repQuiet.StallCycles)
	}
	if repBusy.StallCycles == 0 {
		t.Error("busy input produced no stalls")
	}
	if repQuiet.ThroughputGchS() != 2.08 {
		t.Errorf("quiet throughput = %v, want full clock", repQuiet.ThroughputGchS())
	}
	if repBusy.ThroughputGchS() >= repQuiet.ThroughputGchS() {
		t.Error("stalled throughput should be lower")
	}
}

func TestReportMetrics(t *testing.T) {
	patterns := []string{"abcde"}
	input := makeInput(11, 1000, "abcde")
	rep := pipeline(t, patterns, mapper.Options{}, input)
	if rep.ThroughputGchS() <= 0 || rep.PowerW() <= 0 ||
		rep.EnergyEfficiency() <= 0 || rep.ComputeDensity() <= 0 {
		t.Errorf("bad metrics: %s", rep)
	}
	if rep.Area.TotalMM2() <= 0 {
		t.Error("zero area")
	}
	if got := rep.String(); !strings.Contains(got, "RAP") {
		t.Errorf("String() = %q", got)
	}
}

func TestBVAPStallsVsRAP(t *testing.T) {
	// BVAP's fixed 4-cycle BVM pipeline vs RAP's depth-32 phase: RAP at
	// depth 32 must stall more.
	patterns := []string{"a{200}b"}
	input := makeInput(12, 5000, "ab")

	rapRep := pipeline(t, patterns, mapper.Options{Depth: 32}, input)

	resBV := compile.Compile(patterns, compile.Options{ModePolicy: compile.AllowNBVA})
	pBV, err := MapBVAP(resBV)
	if err != nil {
		t.Fatal(err)
	}
	bvapRep, err := SimulateBVAP(resBV, pBV, input)
	if err != nil {
		t.Fatal(err)
	}
	if bvapRep.StallCycles >= rapRep.StallCycles {
		t.Errorf("BVAP stalls %d >= RAP@32 stalls %d", bvapRep.StallCycles, rapRep.StallCycles)
	}
	if bvapRep.Matches != rapRep.Matches {
		t.Errorf("match disagreement: %d vs %d", bvapRep.Matches, rapRep.Matches)
	}
}

func TestEmptyPlacement(t *testing.T) {
	res := compile.Compile(nil, compile.Options{})
	p, err := mapper.Map(res, mapper.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := SimulateRAP(res, p, []byte("abc"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matches != 0 {
		t.Error("matches on empty placement")
	}
}

func TestBinningIncreasesGatedFraction(t *testing.T) {
	// §3.2: binning concentrates initial states so more tiles power-gate.
	// Long motifs so a bin spans several tiles: the non-leading tiles can
	// power-gate, whereas unbinned mapping puts initial states everywhere.
	var patterns []string
	r := rand.New(rand.NewSource(77))
	for i := 0; i < 32; i++ {
		var sb strings.Builder
		for j := 0; j < 40; j++ {
			sb.WriteByte(byte('a' + r.Intn(8)))
		}
		patterns = append(patterns, sb.String())
	}
	input := makeInput(88, 10000, "abcdefgh")
	gatedFrac := func(bin int) float64 {
		rep := pipeline(t, patterns, mapper.Options{BinSize: bin}, input)
		if rep.LNFATileCycles == 0 {
			t.Fatal("no LNFA tile cycles")
		}
		return float64(rep.GatedTileCycles) / float64(rep.LNFATileCycles)
	}
	f1 := gatedFrac(1)
	f16 := gatedFrac(16)
	if f16 <= f1 {
		t.Errorf("gated fraction bin16 %.3f <= bin1 %.3f", f16, f1)
	}
	if f16 < 0.3 {
		t.Errorf("bin16 gated fraction only %.3f", f16)
	}
}
