package sim

import (
	"repro/internal/arch"
	"repro/internal/hwmodel"
)

// Area and leakage accounting. Only placed (used) hardware is charged,
// matching the paper's per-benchmark area numbers, which scale with the
// dataset.

// RAPArea computes the area breakdown of a RAP placement without running
// a simulation (used by the DSE and by Program stats).
func RAPArea(p *arch.Placement) AreaBreakdown { return rapArea(p) }

// rapArea computes the area breakdown of a RAP placement.
func rapArea(p *arch.Placement) AreaBreakdown {
	var a AreaBreakdown
	tiles := float64(p.TilesUsed())
	arrays := float64(len(p.Arrays))
	banks := float64(p.Banks())
	a.Tiles = tiles * rapTileAreaUM2 * hwmodel.UM2ToMM2
	a.GlobalSwitch = arrays * hwmodel.SRAM256.AreaUM2 * hwmodel.UM2ToMM2
	a.Controller = arrays * hwmodel.GlobalController.AreaUM2 * hwmodel.UM2ToMM2
	a.IO = banks * ioAreaPerBankUM2 * hwmodel.UM2ToMM2
	return a
}

// nfaStyleArea computes area for CAMA / CA style placements (everything in
// NFA mode on 128-STE tiles).
func nfaStyleArea(archName string, p *arch.Placement) AreaBreakdown {
	var a AreaBreakdown
	tiles := float64(p.TilesUsed())
	arrays := float64(len(p.Arrays))
	banks := float64(p.Banks())
	perTile := float64(camaTileAreaUM2)
	if archName == "CA" {
		perTile = caTileAreaUM2
	}
	a.Tiles = tiles * perTile * hwmodel.UM2ToMM2
	a.GlobalSwitch = arrays * hwmodel.SRAM256.AreaUM2 * hwmodel.UM2ToMM2
	a.Controller = arrays * hwmodel.GlobalController.AreaUM2 * hwmodel.UM2ToMM2
	a.IO = banks * ioAreaPerBankUM2 * hwmodel.UM2ToMM2
	return a
}

// bvapArea: CAMA tiles plus a fixed BVM on every tile (the rigid
// provisioning RAP's dynamic allocation removes).
func bvapArea(p *arch.Placement) AreaBreakdown {
	a := nfaStyleArea("CAMA", p)
	a.BVM = float64(p.TilesUsed()) * bvapBVMAreaUM2 * hwmodel.UM2ToMM2
	return a
}

// leakagePowerW returns the static power of the placed hardware.
func leakagePowerW(archName string, p *arch.Placement) float64 {
	tiles := float64(p.TilesUsed())
	arrays := float64(len(p.Arrays))
	v := hwmodel.SupplyVoltage
	var perTile float64
	switch archName {
	case "CA":
		perTile = float64(caMatchMacros)*hwmodel.SRAM128.LeakagePowerW(v) + hwmodel.SRAM128.LeakagePowerW(v)
	case "CAMA":
		perTile = hwmodel.CAM.LeakagePowerW(v) + hwmodel.SRAM128.LeakagePowerW(v)
	case "BVAP":
		perTile = hwmodel.CAM.LeakagePowerW(v) + hwmodel.SRAM128.LeakagePowerW(v) +
			0.6*hwmodel.SRAM128.LeakagePowerW(v) // BVM storage + MFCB
	default: // RAP (controller shared per tile pair, see constants.go)
		perTile = hwmodel.CAM.LeakagePowerW(v) + hwmodel.SRAM128.LeakagePowerW(v) +
			hwmodel.LocalController.LeakagePowerW(v)/2
	}
	perArray := hwmodel.SRAM256.LeakagePowerW(v) + hwmodel.GlobalController.LeakagePowerW(v)
	return tiles*perTile + arrays*perArray
}
