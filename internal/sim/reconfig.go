package sim

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/compile"
)

// ReconfigEvent is a mid-stream live reconfiguration: at input offset At
// the fabric swaps from the old placement to the new one, stalling the
// touched banks for StallCycles (the reconfig scheduler's quiesce +
// serialized-reload window) and spending EnergyPJ of configuration-write
// energy. It extends the flows/context-switch machinery — where a context
// switch saves and restores per-flow state, a reconfiguration rewrites
// the configuration itself.
type ReconfigEvent struct {
	// At is the input offset at which the swap takes effect. Bytes before
	// it run on the old program, bytes from it onward on the new one.
	At int
	// StallCycles is the chip-level stall window (reconfig.Plan.StallCycles).
	StallCycles int64
	// EnergyPJ is the configuration-write energy (reconfig.Plan.EnergyPJ).
	EnergyPJ float64
}

// SimulateRAPReconfig executes a live ruleset swap: the old compilation/
// placement matches input[:ev.At], the fabric quiesces and reloads for
// ev.StallCycles, and the new compilation/placement matches input[ev.At:].
// Automaton state does not survive the swap — quiescing drains the arrays
// (§3.3's deployment path has no state migration), so patterns straddling
// the boundary do not match; this is the same semantics the service layer
// exposes by pinning open sessions to the pre-update program.
//
// The merged report sums matches, energy and stalls; PerRegex indices
// refer to the old compilation below ev.At and the new one above it, so
// the merged map keys by the new compilation only when the regex counts
// agree — otherwise PerRegex is left nil.
func SimulateRAPReconfig(resOld *compile.Result, pOld *arch.Placement,
	resNew *compile.Result, pNew *arch.Placement,
	input []byte, ev ReconfigEvent) (*Report, error) {
	if ev.At < 0 || ev.At > len(input) {
		return nil, fmt.Errorf("sim: reconfigure offset %d outside input of %d", ev.At, len(input))
	}
	if ev.StallCycles < 0 {
		return nil, fmt.Errorf("sim: negative stall %d", ev.StallCycles)
	}
	before, err := SimulateRAP(resOld, pOld, input[:ev.At])
	if err != nil {
		return nil, fmt.Errorf("sim: pre-reconfigure phase: %w", err)
	}
	after, err := SimulateRAP(resNew, pNew, input[ev.At:])
	if err != nil {
		return nil, fmt.Errorf("sim: post-reconfigure phase: %w", err)
	}
	rep := &Report{
		Arch:     "RAP",
		Chars:    int64(len(input)),
		ClockGHz: before.ClockGHz,
		// The two phases run sequentially on the same fabric; the stall
		// window sits between them.
		Cycles:              before.Cycles + ev.StallCycles + after.Cycles,
		StallCycles:         before.StallCycles + after.StallCycles + ev.StallCycles,
		ReconfigEvents:      1,
		ReconfigStallCycles: ev.StallCycles,
		Matches:             before.Matches + after.Matches,
		IOInterrupts:        before.IOInterrupts + after.IOInterrupts,
		GatedTileCycles:     before.GatedTileCycles + after.GatedTileCycles,
		LNFATileCycles:      before.LNFATileCycles + after.LNFATileCycles,
	}
	rep.Energy.Add(before.Energy)
	rep.Energy.Add(after.Energy)
	rep.Energy.Config += ev.EnergyPJ
	// Leakage during the stall window, on the fabric being programmed.
	stallS := float64(ev.StallCycles) / (rep.ClockGHz * 1e9)
	rep.Energy.Leakage += leakagePowerW("RAP", pNew) * stallS * 1e12
	// The fabric must provision for both placements; report the larger.
	aOld, aNew := rapArea(pOld), rapArea(pNew)
	if aOld.TotalMM2() > aNew.TotalMM2() {
		rep.Area = aOld
	} else {
		rep.Area = aNew
	}
	if len(resOld.Regexes) == len(resNew.Regexes) {
		rep.PerRegex = map[int]int64{}
		for ri, n := range before.PerRegex {
			rep.PerRegex[ri] += n
		}
		for ri, n := range after.PerRegex {
			rep.PerRegex[ri] += n
		}
	}
	return rep, nil
}
