package sim

import (
	"repro/internal/arch"
	"repro/internal/compile"
	"repro/internal/stream"
)

// NBVAStallTraces runs only the functional NBVA engines of a placement
// and records, for every NBVA-mode array, the stall trace: the number of
// bit-vector-processing cycles incurred after each input symbol. The
// traces feed the bank-level buffering models in internal/stream, which
// quantify how much of the stall latency the §3.3 two-level buffering
// hides.
func NBVAStallTraces(res *compile.Result, p *arch.Placement, input []byte) ([]stream.StallTrace, error) {
	var traces []stream.StallTrace
	for ai := range p.Arrays {
		plan := &p.Arrays[ai]
		if plan.Mode != arch.ModeNBVA {
			continue
		}
		e, err := newNBVAArrayEngine(res, plan)
		if err != nil {
			return nil, err
		}
		tr := make(stream.StallTrace, len(input))
		var st nbvaStep
		for k, b := range input {
			e.step(b, &st)
			if st.anyBV {
				tr[k] = uint16(plan.Depth)
			}
		}
		traces = append(traces, tr)
	}
	return traces, nil
}
