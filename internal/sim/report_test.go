package sim

import (
	"strings"
	"testing"
)

func TestEnergyBreakdownAddTotal(t *testing.T) {
	a := EnergyBreakdown{CAM: 1, LocalSwitch: 2, GlobalSwitch: 3, Controller: 4, BVM: 5, Wire: 6, Leakage: 7}
	b := a
	a.Add(b)
	if a.TotalPJ() != 2*28 {
		t.Errorf("TotalPJ = %v", a.TotalPJ())
	}
}

func TestAreaBreakdownAddTotal(t *testing.T) {
	a := AreaBreakdown{Tiles: 1, GlobalSwitch: 2, Controller: 3, BVM: 4, IO: 5}
	b := a
	a.Add(b)
	if a.TotalMM2() != 30 {
		t.Errorf("TotalMM2 = %v", a.TotalMM2())
	}
}

func TestReportZeroSafety(t *testing.T) {
	var r Report
	if r.ThroughputGchS() != 0 || r.PowerW() != 0 || r.EnergyEfficiency() != 0 || r.ComputeDensity() != 0 {
		t.Error("zero report produced non-zero derived metrics")
	}
}

func TestReportDerivedMetrics(t *testing.T) {
	r := Report{
		Arch: "RAP", Chars: 1000, Cycles: 1000, ClockGHz: 2.0,
		Energy: EnergyBreakdown{CAM: 1e6}, // 1 µJ
		Area:   AreaBreakdown{Tiles: 0.5},
	}
	if got := r.ThroughputGchS(); got != 2.0 {
		t.Errorf("throughput = %v", got)
	}
	// time = 1000 / 2e9 = 0.5 µs; power = 1µJ / 0.5µs = 2 W.
	if got := r.PowerW(); got < 1.999 || got > 2.001 {
		t.Errorf("power = %v", got)
	}
	if got := r.EnergyEfficiency(); got < 0.999 || got > 1.001 {
		t.Errorf("efficiency = %v", got)
	}
	if got := r.ComputeDensity(); got != 4.0 {
		t.Errorf("density = %v", got)
	}
	if s := r.String(); !strings.Contains(s, "RAP") || !strings.Contains(s, "2.00 Gch/s") {
		t.Errorf("String = %q", s)
	}
}
