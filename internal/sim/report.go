// Package sim contains the cycle-level simulators for RAP and the
// state-of-the-art baselines it is compared against (§5): CAMA, CA (Cache
// Automaton) and BVAP. Following the paper's methodology (§5.2), the
// simulators execute the actual dataflow — functional automata runners
// drive per-cycle activity — and charge energy from the Table 1 circuit
// models in internal/hwmodel. Matching results are cross-checked against
// internal/refmatch in the integration tests, mirroring the paper's
// Hyperscan consistency checks.
package sim

import (
	"fmt"
	"strings"
)

// EnergyBreakdown accumulates energy per component class, in picojoules.
type EnergyBreakdown struct {
	CAM          float64 // state-matching accesses (CAM or SRAM match array)
	LocalSwitch  float64 // local FCB traversals (state transition / BV routing)
	GlobalSwitch float64 // array-level FCB
	Controller   float64 // local + global controllers
	BVM          float64 // BVAP's dedicated bit-vector modules
	Wire         float64 // global wires / LNFA ring
	Config       float64 // live-reconfiguration writes (delta reload path)
	Leakage      float64
}

// TotalPJ returns the summed energy in picojoules.
func (e *EnergyBreakdown) TotalPJ() float64 {
	return e.CAM + e.LocalSwitch + e.GlobalSwitch + e.Controller + e.BVM + e.Wire + e.Config + e.Leakage
}

// Add accumulates another breakdown.
func (e *EnergyBreakdown) Add(o EnergyBreakdown) {
	e.CAM += o.CAM
	e.LocalSwitch += o.LocalSwitch
	e.GlobalSwitch += o.GlobalSwitch
	e.Controller += o.Controller
	e.BVM += o.BVM
	e.Wire += o.Wire
	e.Config += o.Config
	e.Leakage += o.Leakage
}

// AreaBreakdown accumulates area per structure, in square millimetres.
type AreaBreakdown struct {
	Tiles        float64 // CAM + local switch (+ local controller for RAP)
	GlobalSwitch float64
	Controller   float64
	BVM          float64
	IO           float64
}

// TotalMM2 returns the summed area.
func (a *AreaBreakdown) TotalMM2() float64 {
	return a.Tiles + a.GlobalSwitch + a.Controller + a.BVM + a.IO
}

// Add accumulates another breakdown.
func (a *AreaBreakdown) Add(o AreaBreakdown) {
	a.Tiles += o.Tiles
	a.GlobalSwitch += o.GlobalSwitch
	a.Controller += o.Controller
	a.BVM += o.BVM
	a.IO += o.IO
}

// Report is the outcome of simulating one placement over one input.
type Report struct {
	Arch  string
	Chars int64
	// Cycles is the maximum cycle count over all arrays (the slowest
	// array bounds throughput, §3.3).
	Cycles int64
	// StallCycles is the total number of bit-vector-processing stall
	// cycles across arrays.
	StallCycles int64
	Matches     int64
	// IOInterrupts counts Bank Output Buffer drains to the host (§3.3:
	// an interrupt is raised whenever the 64-entry buffer fills).
	IOInterrupts int64
	ClockGHz     float64

	// ReconfigEvents counts mid-stream live reconfigurations and
	// ReconfigStallCycles the cycles the match pipeline stalled for them
	// (filled by SimulateRAPReconfig).
	ReconfigEvents      int64
	ReconfigStallCycles int64

	// PerRegex attributes match reports to compiled regex indices
	// (filled by SimulateRAP; nil for the baseline simulators).
	PerRegex map[int]int64

	// GatedTileCycles counts LNFA tile-cycles spent power-gated, and
	// LNFATileCycles the total tile-cycles of LNFA-mode tiles — their
	// ratio is the §3.2 binning/power-gating effectiveness.
	GatedTileCycles int64
	LNFATileCycles  int64

	Energy EnergyBreakdown
	Area   AreaBreakdown
}

// ThroughputGchS returns characters per second in Gch/s.
func (r *Report) ThroughputGchS() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Chars) / float64(r.Cycles) * r.ClockGHz
}

// TimeSeconds returns the simulated wall-clock time.
func (r *Report) TimeSeconds() float64 {
	if r.ClockGHz == 0 {
		return 0
	}
	return float64(r.Cycles) / (r.ClockGHz * 1e9)
}

// EnergyUJ returns total energy in microjoules.
func (r *Report) EnergyUJ() float64 { return r.Energy.TotalPJ() * 1e-6 }

// PowerW returns average power.
func (r *Report) PowerW() float64 {
	t := r.TimeSeconds()
	if t == 0 {
		return 0
	}
	return r.Energy.TotalPJ() * 1e-12 / t
}

// EnergyEfficiency returns throughput per watt (Gch/s/W), the paper's
// energy-efficiency metric.
func (r *Report) EnergyEfficiency() float64 {
	p := r.PowerW()
	if p == 0 {
		return 0
	}
	return r.ThroughputGchS() / p
}

// ComputeDensity returns throughput per area (Gch/s/mm²), the paper's
// compute-density metric.
func (r *Report) ComputeDensity() float64 {
	a := r.Area.TotalMM2()
	if a == 0 {
		return 0
	}
	return r.ThroughputGchS() / a
}

// String renders a one-line summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %.2f Gch/s, %.2f µJ, %.3f mm², %.2f W, eff %.1f Gch/s/W, density %.2f Gch/s/mm², %d matches",
		r.Arch, r.ThroughputGchS(), r.EnergyUJ(), r.Area.TotalMM2(), r.PowerW(),
		r.EnergyEfficiency(), r.ComputeDensity(), r.Matches)
	return b.String()
}
