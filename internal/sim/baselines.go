package sim

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/compile"
	"repro/internal/hwmodel"
	"repro/internal/mapper"
)

// SimulateBaseline runs the CAMA or CA baseline over an all-NFA
// compilation (§5.2: all baselines adopt 128×128 FCB local switches and
// the same circuit models and greedy mapping).
//
// CAMA matches states with a 32×128 CAM search per tile; CA activates one
// one-hot row of a 256×128 SRAM match array (two SRAM128 macros), which is
// slightly cheaper per access but costs twice the match-array area.
func SimulateBaseline(archName string, res *compile.Result, p *arch.Placement, input []byte) (*Report, error) {
	if archName != "CAMA" && archName != "CA" {
		return nil, fmt.Errorf("sim: unknown baseline %q", archName)
	}
	rep := &Report{Arch: archName, Chars: int64(len(input)), ClockGHz: clockFor(archName)}
	for ai := range p.Arrays {
		plan := &p.Arrays[ai]
		if plan.Mode != arch.ModeNFA {
			return nil, fmt.Errorf("sim: %s expects all-NFA placement, got %v array", archName, plan.Mode)
		}
		if err := runBaselineNFAArray(rep, archName, res, plan, input); err != nil {
			return nil, err
		}
	}
	rep.Cycles = int64(len(input))
	rep.Area = nfaStyleArea(archName, p)
	finishReport(rep, archName, p)
	return rep, nil
}

func runBaselineNFAArray(rep *Report, archName string, res *compile.Result, plan *arch.ArrayPlan, input []byte) error {
	e, err := newNFAArrayEngine(res, plan)
	if err != nil {
		return err
	}
	usedTiles := usedTileIndices(plan)
	colsFrac := make([]float64, len(plan.Tiles))
	for _, t := range usedTiles {
		colsFrac[t] = float64(plan.Tiles[t].Columns()) / float64(arch.TileSTEs)
	}
	crossEdges := plan.CrossTileEdges > 0
	var en EnergyBreakdown
	for i, b := range input {
		matches, _, crossActive := e.step(b, i == len(input)-1)
		rep.Matches += int64(matches)
		for _, t := range usedTiles {
			if archName == "CA" {
				// One driven row per match-array macro.
				en.CAM += float64(caMatchMacros) * hwmodel.SRAM128.AccessEnergyPJ(caMatchRowActivity) * colsFrac[t]
			} else {
				en.CAM += hwmodel.CAM.AccessEnergyPJ(1) * colsFrac[t]
			}
			en.LocalSwitch += hwmodel.SRAM128.AccessEnergyPJ(float64(e.tileMatched[t]) / float64(arch.TileSTEs))
		}
		en.Controller += hwmodel.GlobalController.AccessEnergyPJ(1)
		if crossEdges {
			en.GlobalSwitch += hwmodel.SRAM256.AccessEnergyPJ(float64(crossActive) / 256)
			en.Wire += float64(crossActive) * hwmodel.GlobalWireMMPerHop * hwmodel.GlobalWire.AccessEnergyPJ(1)
		}
	}
	rep.Energy.Add(en)
	return nil
}

// --- BVAP -------------------------------------------------------------

// MapBVAP places a ModePolicy=AllowNBVA result onto BVAP hardware: NFA regexes
// use the standard greedy NFA mapping; NBVA regexes use CAMA-style tiles
// whose fixed Bit Vector Module provides bvapBVsPerTile slots of
// bvapBVBits bits each.
func MapBVAP(res *compile.Result) (*arch.Placement, error) {
	// NFA part through the shared mapper.
	nfaOnly := &compile.Result{Regexes: make([]compile.Compiled, len(res.Regexes))}
	for i := range res.Regexes {
		if res.Regexes[i].Mode == compile.ModeNFA {
			nfaOnly.Regexes[i] = res.Regexes[i]
		}
	}
	p, err := mapper.Map(nfaOnly, mapper.Options{})
	if err != nil {
		return nil, err
	}
	// NBVA part with BVAP's fixed-slot allocation.
	var cur *arch.ArrayPlan
	openArray := func() {
		p.Arrays = append(p.Arrays, arch.ArrayPlan{
			Mode:      arch.ModeNBVA,
			Tiles:     make([]arch.TilePlan, arch.TilesPerArray),
			Depth:     bvapStallCycles, // BVM pipeline depth
			StateTile: map[arch.StateRef]int{},
		})
		cur = &p.Arrays[len(p.Arrays)-1]
	}
	maxBVBitsPerTile := bvapBVsPerTile * bvapBVBits
	for i := range res.Regexes {
		c := &res.Regexes[i]
		if c.Mode != compile.ModeNBVA || c.Source == "" {
			continue
		}
		if cur == nil {
			openArray()
		}
		if !bvapTryPlace(cur, c, maxBVBitsPerTile) {
			openArray()
			if !bvapTryPlace(cur, c, maxBVBitsPerTile) {
				return nil, fmt.Errorf("%w: %q does not fit one BVAP array", mapper.ErrUnmappable, c.Source)
			}
		}
		cur.Regexes = append(cur.Regexes, c.Index)
	}
	return p, nil
}

// bvapTryPlace first-fit packs one NBVA regex's STEs into the array.
func bvapTryPlace(a *arch.ArrayPlan, c *compile.Compiled, maxBVBitsPerTile int) bool {
	tiles := make([]arch.TilePlan, len(a.Tiles))
	copy(tiles, a.Tiles)
	for i := range a.Tiles {
		tiles[i].BVs = append([]arch.BVAlloc(nil), a.Tiles[i].BVs...)
		tiles[i].Regexes = append([]int(nil), a.Tiles[i].Regexes...)
	}
	stateTile := map[arch.StateRef]int{}
	slotsUsed := func(tp *arch.TilePlan) int {
		s := 0
		for _, bv := range tp.BVs {
			s += bv.Width // Width stores BVM slots for BVAP
		}
		return s
	}
	for q, s := range c.NBVA.States {
		placed := false
		needSlots := 0
		if s.BV != nil {
			if s.BV.Size > maxBVBitsPerTile {
				return false // BVAP cannot split across its BVM boundary
			}
			needSlots = (s.BV.Size + bvapBVBits - 1) / bvapBVBits
		}
		for t := range tiles {
			tp := &tiles[t]
			if tp.CCColumns+1 > arch.TileSTEs {
				continue
			}
			if needSlots > 0 && slotsUsed(tp)+needSlots > bvapBVsPerTile {
				continue
			}
			tp.CCColumns++
			if needSlots > 0 {
				tp.BVs = append(tp.BVs, arch.BVAlloc{
					Regex: c.Index, STE: q, Size: s.BV.Size,
					Width: needSlots, Depth: bvapStallCycles, Read: s.BV.Read,
				})
				tp.HasBV = true
			}
			stateTile[arch.StateRef{Regex: c.Index, State: q}] = t
			if len(tp.Regexes) == 0 || tp.Regexes[len(tp.Regexes)-1] != c.Index {
				tp.Regexes = append(tp.Regexes, c.Index)
			}
			placed = true
			break
		}
		if !placed {
			return false
		}
	}
	copy(a.Tiles, tiles)
	for k, v := range stateTile {
		a.StateTile[k] = v
	}
	return true
}

// SimulateBVAP runs the BVAP baseline: CAMA-style state matching plus the
// event-driven BVM pipeline (read, route, act) that stalls the array for
// bvapStallCycles per triggered symbol (§2.2).
func SimulateBVAP(res *compile.Result, p *arch.Placement, input []byte) (*Report, error) {
	rep := &Report{Arch: "BVAP", Chars: int64(len(input)), ClockGHz: clockFor("BVAP")}
	var maxCycles int64
	for ai := range p.Arrays {
		plan := &p.Arrays[ai]
		var cycles int64
		var err error
		switch plan.Mode {
		case arch.ModeNFA:
			err = runBaselineNFAArray(rep, "CAMA", res, plan, input)
			cycles = int64(len(input))
		case arch.ModeNBVA:
			cycles, err = runBVAPNBVAArray(rep, res, plan, input)
		default:
			err = fmt.Errorf("sim: BVAP cannot run %v arrays", plan.Mode)
		}
		if err != nil {
			return nil, err
		}
		if cycles > maxCycles {
			maxCycles = cycles
		}
	}
	if maxCycles == 0 {
		maxCycles = int64(len(input))
	}
	rep.Cycles = maxCycles
	rep.Area = bvapArea(p)
	finishReport(rep, "BVAP", p)
	return rep, nil
}

func runBVAPNBVAArray(rep *Report, res *compile.Result, plan *arch.ArrayPlan, input []byte) (int64, error) {
	e, err := newNBVAArrayEngine(res, plan)
	if err != nil {
		return 0, err
	}
	usedTiles := usedTileIndices(plan)
	ccFrac := make([]float64, len(plan.Tiles))
	for _, t := range usedTiles {
		ccFrac[t] = float64(plan.Tiles[t].CCColumns) / float64(arch.TileSTEs)
	}
	var en EnergyBreakdown
	var st nbvaStep
	cycles := int64(0)
	for _, b := range input {
		e.step(b, &st)
		rep.Matches += int64(st.matches)
		cycles++
		for _, t := range usedTiles {
			en.CAM += hwmodel.CAM.AccessEnergyPJ(1) * ccFrac[t]
			en.LocalSwitch += hwmodel.SRAM128.AccessEnergyPJ(float64(st.tileMatched[t]) / float64(arch.TileSTEs))
			en.BVM += bvapBVMIdlePJ
		}
		en.Controller += hwmodel.GlobalController.AccessEnergyPJ(1)
		if st.anyBV {
			cycles += int64(bvapStallCycles)
			rep.StallCycles += int64(bvapStallCycles)
			for _, t := range usedTiles {
				if st.bvTileCols[t] == 0 {
					continue
				}
				en.BVM += float64(bvapStallCycles) * bvapBVMEnergyPJ
			}
		}
	}
	rep.Energy.Add(en)
	return cycles, nil
}
