package sim

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/internal/compile"
)

// TraceEvent is one observability record emitted by Trace: a cycle at
// which something reportable happened in an array (a match fired, or an
// NBVA array entered its bit-vector-processing phase).
type TraceEvent struct {
	Offset  int64  `json:"offset"` // input symbol offset (0-based)
	Array   int    `json:"array"`  // array index in the placement
	Mode    string `json:"mode"`   // NFA / NBVA / LNFA
	Symbol  byte   `json:"symbol"` // input byte consumed
	Active  int    `json:"active"` // active STEs in the array
	Matches int    `json:"matches,omitempty"`
	BVPhase bool   `json:"bv_phase,omitempty"` // bit-vector-processing triggered
	Stall   int    `json:"stall,omitempty"`    // stall cycles incurred
}

// Trace re-executes the functional dataflow of a placement and writes one
// JSON line per reportable event (matches and bit-vector-processing
// phases) to w. It is the observability companion to SimulateRAP: the
// energy/throughput numbers come from SimulateRAP, the per-cycle story
// from Trace (rapsim -trace).
func Trace(res *compile.Result, p *arch.Placement, input []byte, w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	emit := func(ev TraceEvent) error { return enc.Encode(ev) }
	for ai := range p.Arrays {
		plan := &p.Arrays[ai]
		var err error
		switch plan.Mode {
		case arch.ModeNFA:
			err = traceNFA(res, plan, ai, input, emit)
		case arch.ModeNBVA:
			err = traceNBVA(res, plan, ai, input, emit)
		case arch.ModeLNFA:
			err = traceLNFA(res, plan, ai, input, emit)
		default:
			err = fmt.Errorf("sim: unknown mode %v", plan.Mode)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

func traceNFA(res *compile.Result, plan *arch.ArrayPlan, ai int, input []byte, emit func(TraceEvent) error) error {
	e, err := newNFAArrayEngine(res, plan)
	if err != nil {
		return err
	}
	for i, b := range input {
		matches, active, _ := e.step(b, i == len(input)-1)
		if matches > 0 {
			if err := emit(TraceEvent{
				Offset: int64(i), Array: ai, Mode: "NFA", Symbol: b,
				Active: active, Matches: matches,
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

func traceNBVA(res *compile.Result, plan *arch.ArrayPlan, ai int, input []byte, emit func(TraceEvent) error) error {
	e, err := newNBVAArrayEngine(res, plan)
	if err != nil {
		return err
	}
	var st nbvaStep
	for i, b := range input {
		e.step(b, &st)
		active := 0
		for _, n := range st.tileMatched {
			active += n
		}
		if st.matches > 0 || st.anyBV {
			stall := 0
			if st.anyBV {
				stall = plan.Depth
			}
			if err := emit(TraceEvent{
				Offset: int64(i), Array: ai, Mode: "NBVA", Symbol: b,
				Active: active, Matches: st.matches, BVPhase: st.anyBV, Stall: stall,
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

func traceLNFA(res *compile.Result, plan *arch.ArrayPlan, ai int, input []byte, emit func(TraceEvent) error) error {
	e, err := newLNFAArrayEngine(res, plan)
	if err != nil {
		return err
	}
	var st lnfaStep
	for i, b := range input {
		e.step(b, &st)
		if st.matches > 0 {
			active := 0
			for _, n := range st.tileActive {
				active += n
			}
			if err := emit(TraceEvent{
				Offset: int64(i), Array: ai, Mode: "LNFA", Symbol: b,
				Active: active, Matches: st.matches,
			}); err != nil {
				return err
			}
		}
	}
	return nil
}
