package sim

import "repro/internal/hwmodel"

// Architecture-structural model constants. Everything tunable about the
// baselines lives here; the RAP numbers follow directly from Table 1 and
// §3.3 and are computed in area.go / rap.go.

const (
	// CAMA: CAM 32×128 + 128×128 FCB per 128-STE tile, no local
	// controller (the RAP local controller is the price of
	// reconfigurability, §5.4).
	camaTileAreaUM2 = 2626 + 5655 // CAM + SRAM128

	// RAP adds the local controller. One controller block (2900 µm²,
	// Table 1) serves a pair of tiles; with the full block charged per
	// tile the RAP:CAMA area ratio would be 1.35×, whereas Table 2's
	// RegexLib row gives 1.37/1.15 ≈ 1.19× — consistent with a shared
	// controller.
	rapTileAreaUM2 = camaTileAreaUM2 + 2900/2

	// CA (Cache Automaton) matches states by activating one 256-bit
	// one-hot row of an SRAM match array: per 128-STE tile the match
	// array is 256×128 (two SRAM128 macros) and the switch a 128×128
	// FCB. Larger area, slightly lower match energy than a CAM search.
	caTileAreaUM2      = 2*5655 + 5655
	caMatchMacros      = 2
	caMatchRowActivity = 1.0 / 128 // one driven row per macro access

	// BVAP: a CAMA tile plus a fixed Bit Vector Module per tile: storage
	// for bvapBVsPerTile bit vectors of bvapBVBits each plus the
	// semi-parallel multibit switch (MFCB). The fixed provisioning is
	// what RAP's dynamic allocation removes (§2.2, §5.4).
	bvapBVsPerTile = 8
	bvapBVBits     = 256
	// BVM area: the BV SRAM scales from the SRAM128 macro by capacity;
	// the MFCB is a semi-parallel *multibit* switch, wider than a plain
	// FCB column — modeled as 3/4 of an FCB.
	bvapBVMAreaUM2 = 5655*(float64(bvapBVsPerTile*bvapBVBits)/(128*128)) + 5655*0.75

	// BVAP bit-vector-processing: the BVM pipeline (read, route, act)
	// processes a BV in fixed 64-bit words: 256/64 = 4 stall cycles per
	// triggered symbol.
	bvapStallCycles = 4

	// BVM access energy per stall cycle per active tile: small SRAM read
	// + write plus an MFCB traversal at low activity.
	bvapBVMEnergyPJ = 9

	// BVM event-detection overhead per tile per cycle: the module snoops
	// the active vector for BV-act signals and keeps its pipeline
	// registers clocked even when no bit vector fires (the counterpart of
	// RAP's local-controller overhead).
	bvapBVMIdlePJ = 1.5

	// IO buffering per bank (§3.3): ping-pong input + output buffers and
	// FIFOs; small compared to a tile.
	ioAreaPerBankUM2  = 2000
	ioEnergyPerCharPJ = 0.2
)

// clockFor returns the clock of each architecture in GHz.
func clockFor(arch string) float64 {
	switch arch {
	case "CAMA":
		return hwmodel.ClockCAMAGHz
	case "CA":
		return hwmodel.ClockCAGHz
	case "BVAP":
		return hwmodel.ClockBVAPGHz
	default:
		return hwmodel.ClockRAPGHz
	}
}
