package sim

import (
	"bytes"
	"testing"

	"repro/internal/arch"
	"repro/internal/compile"
	"repro/internal/mapper"
)

func compileAndMap(t *testing.T, patterns []string) (*compile.Result, *arch.Placement) {
	t.Helper()
	res := compile.Compile(patterns, compile.Options{})
	if len(res.Errors) != 0 {
		t.Fatal(res.Errors[0])
	}
	p, err := mapper.Map(res, mapper.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res, p
}

func TestSimulateRAPReconfigSplitsMatching(t *testing.T) {
	resOld, pOld := compileAndMap(t, []string{"cat"})
	resNew, pNew := compileAndMap(t, []string{"dog"})
	// "cat" appears only before the swap, "dog" only after: both match.
	input := append(bytes.Repeat([]byte("xcatx"), 10), bytes.Repeat([]byte("xdogx"), 10)...)
	at := 50
	ev := ReconfigEvent{At: at, StallCycles: 100, EnergyPJ: 500}
	rep, err := SimulateRAPReconfig(resOld, pOld, resNew, pNew, input, ev)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matches != 20 {
		t.Errorf("matches = %d, want 10 cat + 10 dog", rep.Matches)
	}
	if rep.ReconfigEvents != 1 || rep.ReconfigStallCycles != 100 {
		t.Errorf("reconfig accounting = %d events, %d stall", rep.ReconfigEvents, rep.ReconfigStallCycles)
	}
	if rep.Energy.Config != 500 {
		t.Errorf("config energy = %v", rep.Energy.Config)
	}
	if rep.Chars != int64(len(input)) {
		t.Errorf("chars = %d", rep.Chars)
	}

	// The stall must show up in throughput: the same input with no event
	// finishes at least StallCycles earlier.
	noEv, err := SimulateRAPReconfig(resOld, pOld, resNew, pNew, input, ReconfigEvent{At: at})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles != noEv.Cycles+100 {
		t.Errorf("cycles %d != %d + 100 stall", rep.Cycles, noEv.Cycles)
	}
	if rep.Energy.TotalPJ() <= noEv.Energy.TotalPJ() {
		t.Error("reconfiguration energy not charged")
	}
}

func TestSimulateRAPReconfigBoundaryNoCarryover(t *testing.T) {
	// A pattern straddling the swap boundary must NOT match: quiesce
	// drains the automaton state.
	resOld, pOld := compileAndMap(t, []string{"abcd"})
	resNew, pNew := compileAndMap(t, []string{"abcd"})
	input := []byte("abcd")
	rep, err := SimulateRAPReconfig(resOld, pOld, resNew, pNew, input, ReconfigEvent{At: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matches != 0 {
		t.Errorf("straddling match leaked across the swap: %d", rep.Matches)
	}
}

func TestSimulateRAPReconfigBadOffset(t *testing.T) {
	res, p := compileAndMap(t, []string{"x"})
	if _, err := SimulateRAPReconfig(res, p, res, p, []byte("xx"), ReconfigEvent{At: 5}); err == nil {
		t.Error("offset beyond input accepted")
	}
	if _, err := SimulateRAPReconfig(res, p, res, p, []byte("xx"), ReconfigEvent{At: -1}); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := SimulateRAPReconfig(res, p, res, p, []byte("xx"), ReconfigEvent{StallCycles: -1}); err == nil {
		t.Error("negative stall accepted")
	}
}
