package telemetry

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWriteOpenMetricsGolden pins the OpenMetrics exposition down to the
// byte: counter families drop the _total suffix in metadata only,
// histogram buckets carry trace-linked exemplar clauses with 3-decimal
// unix-second timestamps, and the exposition terminates with # EOF.
func TestWriteOpenMetricsGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rap_test_scans_total", "Scans processed.")
	c.Add(5)
	h := r.Histogram("rap_test_duration_us", "Test latency.", L("stage", "scan"))
	at := time.Unix(1700000000, 250_000_000)
	h.ObserveValueExemplarAt(3, "0af7651916cd43dd8448eb211c80319c", at)
	h.ObserveValue(1)

	var b strings.Builder
	if err := r.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP rap_test_scans Scans processed.
# TYPE rap_test_scans counter
rap_test_scans_total 5
# HELP rap_test_duration_us Test latency.
# TYPE rap_test_duration_us histogram
rap_test_duration_us_bucket{stage="scan",le="1"} 1
rap_test_duration_us_bucket{stage="scan",le="3"} 2 # {trace_id="0af7651916cd43dd8448eb211c80319c"} 3 1700000000.250
rap_test_duration_us_bucket{stage="scan",le="+Inf"} 2
rap_test_duration_us_sum{stage="scan"} 4
rap_test_duration_us_count{stage="scan"} 2
# EOF
`
	if got := b.String(); got != want {
		t.Errorf("openmetrics exposition mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}

	// The Prometheus rendering of the same registry keeps the full
	// counter name in metadata, emits no exemplars, and has no # EOF.
	b.Reset()
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	prom := b.String()
	if !strings.Contains(prom, "# TYPE rap_test_scans_total counter") {
		t.Errorf("prometheus metadata lost _total suffix:\n%s", prom)
	}
	if strings.Contains(prom, "trace_id") || strings.Contains(prom, "# EOF") {
		t.Errorf("prometheus exposition leaked openmetrics syntax:\n%s", prom)
	}
}

func TestExemplarWithoutTimestamp(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_us", "")
	h.ObserveValueExemplarAt(1, "abc", time.Unix(0, 0)) // UnixNano 0 = no timestamp
	var b strings.Builder
	if err := r.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	wantLine := `h_us_bucket{le="1"} 1 # {trace_id="abc"} 1`
	if !strings.Contains(b.String(), wantLine+"\n") {
		t.Errorf("timestampless exemplar line missing %q in:\n%s", wantLine, b.String())
	}
}

func TestAcceptsOpenMetrics(t *testing.T) {
	cases := []struct {
		accept string
		want   bool
	}{
		{"", false},
		{"text/plain", false},
		{"application/openmetrics-text", true},
		{"application/openmetrics-text; version=1.0.0; charset=utf-8", true},
		{"text/plain;q=0.5, application/openmetrics-text;version=1.0.0;q=0.8", true},
		{"application/json", false},
	}
	for _, tc := range cases {
		if got := AcceptsOpenMetrics(tc.accept); got != tc.want {
			t.Errorf("AcceptsOpenMetrics(%q) = %v, want %v", tc.accept, got, tc.want)
		}
	}
}

func TestHandlerContentNegotiation(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "X.").Inc()

	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, req)
	if got := rec.Header().Get("Content-Type"); got != ContentTypeOpenMetrics {
		t.Errorf("openmetrics content type: %q", got)
	}
	if body := rec.Body.String(); !strings.HasSuffix(body, "# EOF\n") {
		t.Errorf("openmetrics body missing # EOF terminator:\n%s", body)
	}

	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if got := rec.Header().Get("Content-Type"); got != ContentTypePrometheus {
		t.Errorf("fallback content type: %q", got)
	}
	if body := rec.Body.String(); strings.Contains(body, "# EOF") {
		t.Errorf("prometheus fallback contains # EOF:\n%s", body)
	}
}

// TestConcurrentExemplarObserveAndScrape hammers a histogram with
// trace-linked observations while scraping the OpenMetrics exposition —
// the -race proof that exemplar capture is safe against the scrape path.
func TestConcurrentExemplarObserveAndScrape(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("hot_us", "Hot histogram.")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids := []string{"aaaa", "bbbb", "cccc"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h.ObserveValueExemplar(int64(i%4096), ids[i%len(ids)])
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.WriteOpenMetrics(&b); err != nil {
			t.Error(err)
			break
		}
		if !strings.HasSuffix(b.String(), "# EOF\n") {
			t.Errorf("scrape %d missing # EOF", i)
			break
		}
	}
	close(stop)
	wg.Wait()
}
