package telemetry

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildInfo is the binary identity reported by /stats and the
// rap_build_info metric, so scrapes are attributable to a version.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Module    string `json:"module,omitempty"`
	Version   string `json:"version,omitempty"`
	Revision  string `json:"vcs_revision,omitempty"`
	VCSTime   string `json:"vcs_time,omitempty"`
	Modified  bool   `json:"vcs_modified,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// Build returns the running binary's build info (cached after the first
// call). Fields absent from the build — e.g. VCS stamps in `go test`
// binaries — are left empty.
func Build() BuildInfo {
	buildOnce.Do(func() {
		buildInfo.GoVersion = runtime.Version()
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfo.Module = bi.Main.Path
		buildInfo.Version = bi.Main.Version
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.Revision = s.Value
			case "vcs.time":
				buildInfo.VCSTime = s.Value
			case "vcs.modified":
				buildInfo.Modified = s.Value == "true"
			}
		}
	})
	return buildInfo
}

// RegisterBuildInfo exposes rap_build_info, the constant-1 gauge whose
// labels identify the binary (the standard Prometheus build-info idiom).
func RegisterBuildInfo(r *Registry) {
	b := Build()
	r.GaugeFunc("rap_build_info",
		"Build identity of the serving binary; value is always 1.",
		func() float64 { return 1 },
		L("go_version", b.GoVersion),
		L("version", b.Version),
		L("revision", b.Revision),
	)
}

// RegisterRuntimeMetrics exposes Go runtime health gauges — goroutines,
// heap, GC — via one collector so each scrape pays a single
// runtime.ReadMemStats.
func RegisterRuntimeMetrics(r *Registry) {
	r.Collect(func(c *Collector) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		c.Gauge("go_goroutines", "Number of live goroutines.", float64(runtime.NumGoroutine()))
		c.Gauge("go_heap_alloc_bytes", "Bytes of allocated heap objects.", float64(ms.HeapAlloc))
		c.Gauge("go_heap_objects", "Number of allocated heap objects.", float64(ms.HeapObjects))
		c.Gauge("go_sys_bytes", "Total bytes obtained from the OS.", float64(ms.Sys))
		c.Counter("go_gc_cycles_total", "Completed GC cycles.", float64(ms.NumGC))
		c.Counter("go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.", float64(ms.PauseTotalNs)/1e9)
		c.Gauge("go_gc_next_bytes", "Heap size target of the next GC cycle.", float64(ms.NextGC))
	})
}
