package telemetry

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWritePrometheusGolden locks the exposition format: a counter, a
// labeled gauge, a gauge func, a histogram with known observations, and
// a dynamic collector must serialize to exactly this text.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rap_scans_total", "Total scans.")
	c.Add(42)
	g := r.Gauge("rap_queue_depth", "Queued tasks.", L("pool", "main"))
	g.Set(7)
	r.GaugeFunc("rap_uptime_seconds", "Process uptime.", func() float64 { return 1.5 })
	h := r.Histogram("rap_stage_duration_us", "Stage latency.", L("stage", "scan"))
	h.ObserveValue(0)   // sub-µs bucket, le="0"
	h.ObserveValue(1)   // le="1"
	h.ObserveValue(100) // [64,128) -> le="127"
	r.Collect(func(out *Collector) {
		out.Counter("rap_program_scans_total", "Per-program scans.", 3,
			L("program", `a"b\c`))
	})

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP rap_scans_total Total scans.
# TYPE rap_scans_total counter
rap_scans_total 42
# HELP rap_queue_depth Queued tasks.
# TYPE rap_queue_depth gauge
rap_queue_depth{pool="main"} 7
# HELP rap_uptime_seconds Process uptime.
# TYPE rap_uptime_seconds gauge
rap_uptime_seconds 1.5
# HELP rap_stage_duration_us Stage latency.
# TYPE rap_stage_duration_us histogram
rap_stage_duration_us_bucket{stage="scan",le="0"} 1
rap_stage_duration_us_bucket{stage="scan",le="1"} 2
rap_stage_duration_us_bucket{stage="scan",le="127"} 3
rap_stage_duration_us_bucket{stage="scan",le="+Inf"} 3
rap_stage_duration_us_sum{stage="scan"} 101
rap_stage_duration_us_count{stage="scan"} 3
# HELP rap_program_scans_total Per-program scans.
# TYPE rap_program_scans_total counter
rap_program_scans_total{program="a\"b\\c"} 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRegistryFamilyMerge checks that a static instrument and a Collect
// callback sharing one family name emit their series contiguously.
func TestRegistryFamilyMerge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rap_things_total", "Things.", L("kind", "static"))
	c.Inc()
	r.Collect(func(out *Collector) {
		out.Counter("rap_things_total", "Things.", 9, L("kind", "dynamic"))
	})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "# TYPE rap_things_total counter") != 1 {
		t.Errorf("family emitted more than once:\n%s", out)
	}
	if !strings.Contains(out, `rap_things_total{kind="static"} 1`) ||
		!strings.Contains(out, `rap_things_total{kind="dynamic"} 9`) {
		t.Errorf("missing series:\n%s", out)
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on counter/gauge type conflict")
		}
	}()
	r := NewRegistry()
	r.Counter("rap_x", "x")
	r.Gauge("rap_x", "x")
}

// TestRegistryConcurrent scrapes while instruments are updated and
// registered from several goroutines; run under -race.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("rap_lat_us", "lat")
	c := r.Counter("rap_ops_total", "ops")
	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 2000; i++ {
				h.Observe(time.Duration(i%500) * time.Microsecond)
				c.Inc()
			}
		}()
	}
	stop := make(chan struct{})
	scraped := make(chan struct{})
	go func() {
		defer close(scraped)
		first := true
		for {
			select {
			case <-stop:
				return
			default:
			}
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
			if first {
				r.GaugeFunc("rap_extra", "late registration", func() float64 { return 1 })
				first = false
			}
		}
	}()
	writers.Wait()
	close(stop)
	<-scraped
}

func TestRegistryHandlerHeaders(t *testing.T) {
	r := NewRegistry()
	r.Counter("rap_ok_total", "ok").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
		t.Errorf("cache-control = %q", cc)
	}
	if !strings.Contains(rec.Body.String(), "rap_ok_total 1") {
		t.Errorf("body = %q", rec.Body.String())
	}
}
