// Package telemetry is the observability substrate of the serving stack:
// a named metric registry with Prometheus text-format exposition
// (wrapping the lock-free primitives of internal/metrics), a lightweight
// span tracer with traceparent propagation and a slow-trace ring buffer,
// HTTP middleware that ties both to structured access logs, and
// collectors for Go runtime and build-info metrics.
//
// The registry deliberately implements only the slice of the Prometheus
// exposition format the service needs — counters, gauges, histograms,
// labels — so the repo stays dependency-free while `curl /metrics`
// remains scrapeable by any Prometheus-compatible agent.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/metrics"
)

// Label is one metric label pair. Series within a family are keyed by
// their full label set.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Registry holds named instruments and exposes them in Prometheus text
// format. All methods are safe for concurrent use; instrument updates
// themselves stay on the lock-free internal/metrics primitives, the
// registry lock is only taken at registration and exposition time.
type Registry struct {
	mu         sync.Mutex
	collectors []func(*Collector)
	types      map[string]string // family name -> counter|gauge|histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{types: map[string]string{}}
}

// checkType panics on a name registered twice with conflicting types —
// a programming error that would emit an invalid exposition.
func (r *Registry) checkType(name, typ string) {
	if prev, ok := r.types[name]; ok && prev != typ {
		panic(fmt.Sprintf("telemetry: metric %q registered as both %s and %s", name, prev, typ))
	}
	r.types[name] = typ
}

// Counter allocates a new counter and registers it under name/labels.
func (r *Registry) Counter(name, help string, labels ...Label) *metrics.Counter {
	c := &metrics.Counter{}
	r.RegisterCounter(name, help, c, labels...)
	return c
}

// RegisterCounter exposes an existing counter (e.g. one embedded in a
// worker pool) under name/labels.
func (r *Registry) RegisterCounter(name, help string, c *metrics.Counter, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkType(name, "counter")
	r.collectors = append(r.collectors, func(out *Collector) {
		out.Counter(name, help, float64(c.Value()), labels...)
	})
}

// Gauge allocates a new gauge and registers it under name/labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *metrics.Gauge {
	g := &metrics.Gauge{}
	r.RegisterGauge(name, help, g, labels...)
	return g
}

// RegisterGauge exposes an existing gauge under name/labels.
func (r *Registry) RegisterGauge(name, help string, g *metrics.Gauge, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkType(name, "gauge")
	r.collectors = append(r.collectors, func(out *Collector) {
		out.Gauge(name, help, float64(g.Value()), labels...)
	})
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkType(name, "gauge")
	r.collectors = append(r.collectors, func(out *Collector) {
		out.Gauge(name, help, fn(), labels...)
	})
}

// Histogram allocates a new histogram and registers it under name/labels.
func (r *Registry) Histogram(name, help string, labels ...Label) *metrics.Histogram {
	h := &metrics.Histogram{}
	r.RegisterHistogram(name, help, h, labels...)
	return h
}

// RegisterHistogram exposes an existing histogram under name/labels.
func (r *Registry) RegisterHistogram(name, help string, h *metrics.Histogram, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkType(name, "histogram")
	r.collectors = append(r.collectors, func(out *Collector) {
		out.Histogram(name, help, h, labels...)
	})
}

// Collect registers a callback that emits samples at scrape time — the
// hook for dynamic series like per-program counters, where the set of
// label values (programs in the cache) changes as the process runs.
func (r *Registry) Collect(fn func(*Collector)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// WritePrometheus writes every registered instrument in Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.write(w, false)
}

// WriteOpenMetrics writes every registered instrument in OpenMetrics
// text format (version 1.0.0): counter families drop their `_total`
// suffix in metadata lines, histogram buckets carry trace-linked
// exemplars, and the exposition is terminated with `# EOF`.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	return r.write(w, true)
}

func (r *Registry) write(w io.Writer, openMetrics bool) error {
	r.mu.Lock()
	collectors := make([]func(*Collector), len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()
	c := newCollector()
	c.openMetrics = openMetrics
	for _, fn := range collectors {
		fn(c)
	}
	return c.write(w)
}

// ContentTypePrometheus and ContentTypeOpenMetrics are the exposition
// content types /metrics negotiates between.
const (
	ContentTypePrometheus  = "text/plain; version=0.0.4; charset=utf-8"
	ContentTypeOpenMetrics = "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

// AcceptsOpenMetrics reports whether an Accept header value asks for the
// OpenMetrics exposition format.
func AcceptsOpenMetrics(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mediaType, _, _ := strings.Cut(strings.TrimSpace(part), ";")
		if strings.TrimSpace(mediaType) == "application/openmetrics-text" {
			return true
		}
	}
	return false
}

// Handler serves GET /metrics. The exposition format is negotiated from
// the Accept header: scrapers asking for application/openmetrics-text
// (Prometheus does, when exemplar ingestion is on) get OpenMetrics with
// exemplars and the `# EOF` terminator; everyone else gets the classic
// Prometheus text format. Responses are marked Cache-Control: no-store —
// every scrape must observe live counters.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Cache-Control", "no-store")
		if AcceptsOpenMetrics(req.Header.Get("Accept")) {
			w.Header().Set("Content-Type", ContentTypeOpenMetrics)
			_ = r.WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", ContentTypePrometheus)
		_ = r.WritePrometheus(w)
	})
}

// Collector accumulates samples during one exposition pass, grouping
// them into families so all series of one name are emitted together (a
// format requirement when static instruments and Collect callbacks share
// a family name).
type Collector struct {
	order []string
	fams  map[string]*family
	// openMetrics selects the OpenMetrics exposition: exemplars are
	// captured from histograms and metadata follows OpenMetrics naming.
	openMetrics bool
}

type family struct {
	help    string
	typ     string
	samples []sample
}

type sample struct {
	suffix   string // "", "_bucket", "_sum", "_count"
	labels   []Label
	value    float64
	exemplar *metrics.Exemplar // OpenMetrics bucket exemplar, or nil
}

func newCollector() *Collector {
	return &Collector{fams: map[string]*family{}}
}

func (c *Collector) add(name, help, typ, suffix string, labels []Label, v float64) {
	c.addExemplar(name, help, typ, suffix, labels, v, nil)
}

func (c *Collector) addExemplar(name, help, typ, suffix string, labels []Label, v float64, ex *metrics.Exemplar) {
	f, ok := c.fams[name]
	if !ok {
		f = &family{help: help, typ: typ}
		c.fams[name] = f
		c.order = append(c.order, name)
	}
	f.samples = append(f.samples, sample{suffix: suffix, labels: labels, value: v, exemplar: ex})
}

// Counter emits one counter sample.
func (c *Collector) Counter(name, help string, v float64, labels ...Label) {
	c.add(name, help, "counter", "", labels, v)
}

// Gauge emits one gauge sample.
func (c *Collector) Gauge(name, help string, v float64, labels ...Label) {
	c.add(name, help, "gauge", "", labels, v)
}

// Histogram emits the full Prometheus histogram sample set (cumulative
// _bucket series, _sum, _count) for one metrics.Histogram. Bucket `le`
// bounds are the histogram's inclusive upper bounds in its native unit
// (µs for latency histograms); empty buckets are elided except +Inf,
// which the format requires.
func (c *Collector) Histogram(name, help string, h *metrics.Histogram, labels ...Label) {
	counts := h.BucketCounts()
	exemplar := func(i int) *metrics.Exemplar {
		if !c.openMetrics {
			return nil
		}
		if e, ok := h.ExemplarAt(i); ok {
			return &e
		}
		return nil
	}
	cum := int64(0)
	for i, n := range counts {
		cum += n
		if n == 0 || i == len(counts)-1 {
			continue
		}
		le := strconv.FormatInt(metrics.BucketUpperBound(i), 10)
		c.addExemplar(name, help, "histogram", "_bucket",
			append(append([]Label(nil), labels...), L("le", le)), float64(cum), exemplar(i))
	}
	c.addExemplar(name, help, "histogram", "_bucket",
		append(append([]Label(nil), labels...), L("le", "+Inf")), float64(cum), exemplar(len(counts)-1))
	c.add(name, help, "histogram", "_sum", labels, float64(h.Sum()))
	c.add(name, help, "histogram", "_count", labels, float64(h.Count()))
}

func (c *Collector) write(w io.Writer) error {
	var b strings.Builder
	for _, name := range c.order {
		f := c.fams[name]
		// OpenMetrics counter metadata names the family without the
		// `_total` suffix; the sample lines keep it. The Prometheus
		// format uses the full name in both places.
		meta := name
		if c.openMetrics && f.typ == "counter" {
			meta = strings.TrimSuffix(name, "_total")
		}
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", meta, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", meta, f.typ)
		for _, s := range f.samples {
			b.WriteString(name)
			b.WriteString(s.suffix)
			writeLabels(&b, s.labels)
			b.WriteByte(' ')
			b.WriteString(formatValue(s.value))
			if c.openMetrics && s.exemplar != nil {
				writeExemplar(&b, s.exemplar)
			}
			b.WriteByte('\n')
		}
	}
	if c.openMetrics {
		b.WriteString("# EOF\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeExemplar appends one OpenMetrics exemplar clause:
// ` # {trace_id="..."} <value> [<unix seconds>]`.
func writeExemplar(b *strings.Builder, ex *metrics.Exemplar) {
	b.WriteString(` # {trace_id="`)
	b.WriteString(escapeLabel(ex.TraceID))
	b.WriteString(`"} `)
	b.WriteString(formatValue(float64(ex.Value)))
	if ex.UnixNano != 0 {
		b.WriteByte(' ')
		b.WriteString(strconv.FormatFloat(float64(ex.UnixNano)/1e9, 'f', 3, 64))
	}
}

func writeLabels(b *strings.Builder, labels []Label) {
	if len(labels) == 0 {
		return
	}
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(v string) string { return helpEscaper.Replace(v) }

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
