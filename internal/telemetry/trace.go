package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"strings"
	"sync"
	"time"
)

// TraceParentHeader is the W3C trace-context header the service reads
// and echoes: 00-<32 hex trace-id>-<16 hex span-id>-<2 hex flags>.
const TraceParentHeader = "Traceparent"

// Span is one timed stage inside a trace (cache lookup, compile, queue
// wait, scan, reconfig apply, ...). Start is the offset from the trace
// start, so a span list reads as a waterfall.
type Span struct {
	Name       string `json:"name"`
	StartUS    int64  `json:"start_us"`
	DurationUS int64  `json:"duration_us"`
}

// Trace is one request's trace: an ID (propagated from the caller's
// traceparent or freshly minted), a span list, and string attributes.
// All methods are safe for concurrent use and nil-safe, so
// instrumentation points never need to check whether tracing is on.
type Trace struct {
	id     string
	spanID string // this trace's own span ID, minted once at Start
	parent string // caller's span ID when propagated
	name   string
	start  time.Time

	mu    sync.Mutex
	spans []Span
	attrs map[string]string
}

// ID returns the 32-hex-digit trace ID ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// SpanID returns the trace's own 16-hex-digit span ID ("" on nil). It is
// minted once when the trace starts, so every render of the traceparent
// header — and every child request carrying it — sees the same parent.
func (t *Trace) SpanID() string {
	if t == nil {
		return ""
	}
	return t.spanID
}

// TraceParent renders the trace as an outgoing traceparent header value.
// Repeated calls return the same value: the span ID is per-trace state,
// not minted per render.
func (t *Trace) TraceParent() string {
	if t == nil {
		return ""
	}
	return fmt.Sprintf("00-%s-%s-01", t.id, t.spanID)
}

// AddSpan records one completed stage with an explicit start time.
func (t *Trace) AddSpan(name string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{
		Name:       name,
		StartUS:    start.Sub(t.start).Microseconds(),
		DurationUS: d.Microseconds(),
	})
	t.mu.Unlock()
}

// StartSpan starts a stage and returns the function that ends it.
func (t *Trace) StartSpan(name string) func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() { t.AddSpan(name, start, time.Since(start)) }
}

// SetAttr attaches a string attribute (method, path, status, ...).
func (t *Trace) SetAttr(key, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.attrs == nil {
		t.attrs = map[string]string{}
	}
	t.attrs[key] = value
	t.mu.Unlock()
}

// TraceRecord is the JSON form of a finished trace served by
// GET /debug/traces.
type TraceRecord struct {
	TraceID    string            `json:"trace_id"`
	ParentSpan string            `json:"parent_span,omitempty"`
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	DurationUS int64             `json:"duration_us"`
	Spans      []Span            `json:"spans,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// Tracer mints trace IDs, finishes traces, and retains the recent slow
// ones in a fixed-size ring buffer for GET /debug/traces.
type Tracer struct {
	slow time.Duration // retain traces at least this slow; 0 retains all

	mu       sync.Mutex
	ring     []TraceRecord
	next     int
	filled   bool
	finished int64
	retained int64
}

// NewTracer returns a tracer retaining up to ringSize finished traces
// whose total duration is at least slow (slow == 0 retains every trace,
// which is the right default for a debugging ring).
func NewTracer(ringSize int, slow time.Duration) *Tracer {
	if ringSize <= 0 {
		ringSize = 64
	}
	return &Tracer{slow: slow, ring: make([]TraceRecord, ringSize)}
}

// Start begins a trace named name. traceparent, when it parses as a
// valid W3C header, pins the trace ID to the caller's and records its
// span ID as the parent; otherwise a fresh random ID is minted.
func (t *Tracer) Start(name, traceparent string) *Trace {
	if t == nil {
		return nil
	}
	tr := &Trace{name: name, start: time.Now()}
	tr.spanID = fmt.Sprintf("%016x", rand.Uint64()|1)
	if id, parent, ok := ParseTraceParent(traceparent); ok {
		tr.id, tr.parent = id, parent
	} else {
		tr.id = fmt.Sprintf("%016x%016x", rand.Uint64(), rand.Uint64()|1)
	}
	return tr
}

// Finish completes the trace, recording it into the ring when it is
// slow enough, and returns its total duration.
func (t *Tracer) Finish(tr *Trace) time.Duration {
	if t == nil || tr == nil {
		return 0
	}
	d := time.Since(tr.start)
	t.mu.Lock()
	t.finished++
	if d >= t.slow {
		tr.mu.Lock()
		rec := TraceRecord{
			TraceID:    tr.id,
			ParentSpan: tr.parent,
			Name:       tr.name,
			Start:      tr.start,
			DurationUS: d.Microseconds(),
			Spans:      append([]Span(nil), tr.spans...),
		}
		if len(tr.attrs) > 0 {
			rec.Attrs = make(map[string]string, len(tr.attrs))
			for k, v := range tr.attrs {
				rec.Attrs[k] = v
			}
		}
		tr.mu.Unlock()
		t.ring[t.next] = rec
		t.next = (t.next + 1) % len(t.ring)
		if t.next == 0 {
			t.filled = true
		}
		t.retained++
	}
	t.mu.Unlock()
	return d
}

// Traces returns the retained traces, most recent first.
func (t *Tracer) Traces() []TraceRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	if t.filled {
		n = len(t.ring)
	}
	out := make([]TraceRecord, 0, n)
	for i := 0; i < n; i++ {
		idx := (t.next - 1 - i + len(t.ring)) % len(t.ring)
		out = append(out, t.ring[idx])
	}
	return out
}

// Handler serves GET /debug/traces: the retained slow traces plus the
// tracer's totals, newest first.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.mu.Lock()
		finished, retained := t.finished, t.retained
		t.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		_ = json.NewEncoder(w).Encode(struct {
			Finished     int64         `json:"finished"`
			Retained     int64         `json:"retained"`
			SlowUS       int64         `json:"slow_threshold_us"`
			RingCapacity int           `json:"ring_capacity"`
			Traces       []TraceRecord `json:"traces"`
		}{finished, retained, t.slow.Microseconds(), len(t.ring), t.Traces()})
	})
}

// ParseTraceParent parses a traceparent header into (traceID, spanID).
// Malformed or all-zero values report ok=false.
func ParseTraceParent(h string) (traceID, spanID string, ok bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) != 4 || len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) != 2 {
		return "", "", false
	}
	if parts[0] != "00" || !isHex(parts[1]) || !isHex(parts[2]) || !isHex(parts[3]) {
		return "", "", false
	}
	if parts[1] == strings.Repeat("0", 32) || parts[2] == strings.Repeat("0", 16) {
		return "", "", false
	}
	return parts[1], parts[2], true
}

func isHex(s string) bool {
	for _, c := range s {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// traceKey is the context key type for the ambient trace.
type traceKey struct{}

// ContextWithTrace returns ctx carrying tr.
func ContextWithTrace(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, tr)
}

// TraceFromContext returns the ambient trace, or nil (every Trace method
// is nil-safe, so callers use the result unconditionally).
func TraceFromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}
