package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseTraceParent(t *testing.T) {
	id := strings.Repeat("ab", 16)
	span := strings.Repeat("cd", 8)
	good := "00-" + id + "-" + span + "-01"
	gotID, gotSpan, ok := ParseTraceParent(good)
	if !ok || gotID != id || gotSpan != span {
		t.Fatalf("ParseTraceParent(%q) = %q %q %v", good, gotID, gotSpan, ok)
	}
	for _, bad := range []string{
		"",
		"garbage",
		"00-" + id + "-" + span,         // missing flags
		"99-" + id + "-" + span + "-01", // unknown version
		"00-" + strings.ToUpper(id) + "-" + span + "-01",     // uppercase hex
		"00-" + strings.Repeat("0", 32) + "-" + span + "-01", // zero trace id
		"00-" + id + "-" + strings.Repeat("0", 16) + "-01",   // zero span id
		"00-" + id[:30] + "-" + span + "-01",                 // short trace id
		"00-" + id + "zz" + "-" + span[:14] + "-01",          // bad lengths
	} {
		if _, _, ok := ParseTraceParent(bad); ok {
			t.Errorf("ParseTraceParent(%q) accepted", bad)
		}
	}
}

func TestTracePropagationAndSpans(t *testing.T) {
	tracer := NewTracer(8, 0)
	id := strings.Repeat("ab", 16)
	tr := tracer.Start("scan", "00-"+id+"-1122334455667788-01")
	if tr.ID() != id {
		t.Fatalf("trace id = %s, want propagated %s", tr.ID(), id)
	}
	end := tr.StartSpan("scan")
	time.Sleep(time.Millisecond)
	end()
	tr.AddSpan("queue_wait", time.Now(), 5*time.Microsecond)
	tr.SetAttr("status", "200")
	if d := tracer.Finish(tr); d <= 0 {
		t.Fatalf("duration = %v", d)
	}
	recs := tracer.Traces()
	if len(recs) != 1 {
		t.Fatalf("retained %d traces", len(recs))
	}
	rec := recs[0]
	if rec.TraceID != id || rec.ParentSpan != "1122334455667788" {
		t.Errorf("record = %+v", rec)
	}
	if len(rec.Spans) != 2 || rec.Spans[0].Name != "scan" || rec.Spans[0].DurationUS < 900 {
		t.Errorf("spans = %+v", rec.Spans)
	}
	if rec.Attrs["status"] != "200" {
		t.Errorf("attrs = %+v", rec.Attrs)
	}
	if tp := tr.TraceParent(); !strings.HasPrefix(tp, "00-"+id+"-") || !strings.HasSuffix(tp, "-01") {
		t.Errorf("traceparent = %q", tp)
	}
}

func TestTracerRingEvictsOldest(t *testing.T) {
	tracer := NewTracer(3, 0)
	for i := 0; i < 5; i++ {
		tr := tracer.Start(fmt.Sprintf("req-%d", i), "")
		tracer.Finish(tr)
	}
	recs := tracer.Traces()
	if len(recs) != 3 {
		t.Fatalf("retained %d, want 3", len(recs))
	}
	// Newest first: req-4, req-3, req-2.
	for i, want := range []string{"req-4", "req-3", "req-2"} {
		if recs[i].Name != want {
			t.Errorf("recs[%d] = %s, want %s", i, recs[i].Name, want)
		}
	}
}

func TestTracerSlowThreshold(t *testing.T) {
	tracer := NewTracer(8, 50*time.Millisecond)
	fast := tracer.Start("fast", "")
	tracer.Finish(fast)
	if got := tracer.Traces(); len(got) != 0 {
		t.Fatalf("fast trace retained: %+v", got)
	}
	slow := tracer.Start("slow", "")
	slow.start = time.Now().Add(-time.Second) // backdate instead of sleeping
	tracer.Finish(slow)
	recs := tracer.Traces()
	if len(recs) != 1 || recs[0].Name != "slow" {
		t.Fatalf("retained = %+v", recs)
	}
}

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	tr.StartSpan("x")()
	tr.AddSpan("y", time.Now(), time.Second)
	tr.SetAttr("k", "v")
	if tr.ID() != "" || tr.TraceParent() != "" {
		t.Error("nil trace leaked identity")
	}
	if got := TraceFromContext(httptest.NewRequest("GET", "/", nil).Context()); got != nil {
		t.Errorf("TraceFromContext on bare context = %v", got)
	}
}

// TestMiddleware drives a request through the tracing middleware and
// checks the full loop: span recorded from inside the handler, trace ID
// echoed in X-Trace-Id, the same ID in the slog access log and in the
// /debug/traces ring.
func TestMiddleware(t *testing.T) {
	tracer := NewTracer(8, 0)
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))

	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tr := TraceFromContext(r.Context())
		end := tr.StartSpan("scan")
		end()
		w.WriteHeader(http.StatusTeapot)
		fmt.Fprint(w, "body")
	})
	srv := httptest.NewServer(Middleware(tracer, logger, inner))
	defer srv.Close()

	id := strings.Repeat("77", 16)
	req, _ := http.NewRequest("GET", srv.URL+"/scan/path", nil)
	req.Header.Set(TraceParentHeader, "00-"+id+"-aaaaaaaaaaaaaaaa-01")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTeapot {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != id {
		t.Errorf("X-Trace-Id = %q, want %q", got, id)
	}

	// Access log carries the trace ID and outcome.
	var line map[string]any
	if err := json.Unmarshal(logBuf.Bytes(), &line); err != nil {
		t.Fatalf("access log not JSON: %v (%s)", err, logBuf.String())
	}
	if line["trace_id"] != id || line["status"] != float64(http.StatusTeapot) || line["path"] != "/scan/path" {
		t.Errorf("access log = %v", line)
	}

	// Ring buffer carries the trace with its handler span.
	rec := httptest.NewRecorder()
	tracer.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
		t.Errorf("cache-control = %q", cc)
	}
	var dump struct {
		Finished int64         `json:"finished"`
		Traces   []TraceRecord `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Finished != 1 || len(dump.Traces) != 1 {
		t.Fatalf("dump = %+v", dump)
	}
	got := dump.Traces[0]
	if got.TraceID != id || len(got.Spans) != 1 || got.Spans[0].Name != "scan" {
		t.Errorf("trace record = %+v", got)
	}
	if got.Attrs["status"] != "418" || got.Attrs["method"] != "GET" {
		t.Errorf("attrs = %+v", got.Attrs)
	}
}

// TestTraceParentStable pins the fix for the span-ID churn bug: every
// render of the traceparent header must carry the same span ID, so
// downstream services all see the same parent span.
func TestTraceParentStable(t *testing.T) {
	tracer := NewTracer(4, 0)
	tr := tracer.Start("GET /x", "")
	first := tr.TraceParent()
	for i := 0; i < 10; i++ {
		if got := tr.TraceParent(); got != first {
			t.Fatalf("TraceParent changed between renders: %q then %q", first, got)
		}
	}
	id, span, ok := ParseTraceParent(first)
	if !ok {
		t.Fatalf("TraceParent %q does not parse", first)
	}
	if id != tr.ID() || span != tr.SpanID() {
		t.Fatalf("header (%s,%s) != trace (%s,%s)", id, span, tr.ID(), tr.SpanID())
	}

	// Propagation: a child trace records the parent's span ID verbatim.
	child := tracer.Start("GET /y", first)
	if child.ID() != tr.ID() {
		t.Fatalf("child trace ID %s != parent %s", child.ID(), tr.ID())
	}
	if child.SpanID() == tr.SpanID() {
		t.Fatal("child minted no span ID of its own")
	}
}
