package telemetry

import (
	"log/slog"
	"net/http"
	"strconv"
	"time"
)

// statusWriter captures the status code and body size for access logs.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Unwrap supports http.ResponseController passthrough (flush, deadlines).
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// Middleware wraps next with request tracing and structured access
// logging: each request gets a Trace (continuing the caller's
// traceparent header when present) injected into the request context,
// the trace ID is echoed in the X-Trace-Id response header, the finished
// trace lands in the tracer's ring buffer, and — when logger is non-nil —
// one slog access-log line records method, path, status, bytes, duration
// and trace ID. Handlers and the service layer attach per-stage spans to
// the ambient trace via TraceFromContext.
func Middleware(tracer *Tracer, logger *slog.Logger, next http.Handler) http.Handler {
	return MiddlewareObserved(tracer, logger, nil, next)
}

// RequestObserver receives every finished request's status, total
// duration and trace — the hook the SLO engine uses to count request
// latency and error-rate events without the middleware knowing about
// objectives.
type RequestObserver func(status int, d time.Duration, tr *Trace)

// MiddlewareObserved is Middleware plus a per-request observer callback
// (nil obs behaves exactly like Middleware).
func MiddlewareObserved(tracer *Tracer, logger *slog.Logger, obs RequestObserver, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tr := tracer.Start(r.Method+" "+r.URL.Path, r.Header.Get(TraceParentHeader))
		if id := tr.ID(); id != "" {
			w.Header().Set("X-Trace-Id", id)
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(ContextWithTrace(r.Context(), tr)))
		tr.SetAttr("method", r.Method)
		tr.SetAttr("path", r.URL.Path)
		tr.SetAttr("status", strconv.Itoa(sw.status))
		d := tracer.Finish(tr)
		if d == 0 {
			d = time.Since(start)
		}
		if obs != nil {
			obs(sw.status, d, tr)
		}
		if logger != nil {
			logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.status),
				slog.Int64("bytes", sw.bytes),
				slog.Duration("duration", d),
				slog.String("trace_id", tr.ID()),
			)
		}
	})
}
