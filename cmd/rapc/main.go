// Command rapc is the regex-to-hardware compiler front end: it reads
// patterns (one per line from files or arguments), runs the Fig 9
// decision graph and the mapper, and prints the chosen mode, resource
// usage and placement summary per pattern.
//
//	rapc 'ab{10,48}c' 'abcdef' 'a(b|c)*d'
//	rapc -f rules.txt -depth 16 -bin 8 -v
//
// With -diff it instead compares two deployment images written by
// -bitstream and reports the delta bitstream a live reconfiguration
// would ship, next to the full-image redeploy cost:
//
//	rapc -bitstream old.img 'cat' && rapc -bitstream new.img 'dog'
//	rapc -diff old.img new.img
//
// With -explain it prints the software fast-path verdict per pattern:
// whether the reference matcher runs it behind the mandatory-literal
// prefilter (and with which literals) or on the always-on scan path, and
// why.
//
//	rapc -explain 'ab.needle.*' '[a-z]+'
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/automata"
	"repro/internal/bitstream"
	"repro/internal/compile"
	"repro/internal/input"
	"repro/internal/mapper"
	"repro/internal/metrics"
	"repro/internal/mnrl"
	"repro/internal/patfile"
	"repro/internal/reconfig"
	"repro/internal/refmatch"
	"repro/internal/regexast"
	"repro/internal/sim"
)

func main() {
	file := flag.String("f", "", "read patterns from file (one per line, # comments)")
	depth := flag.Int("depth", 8, "NBVA bit-vector depth (4, 8, 16, 32)")
	bin := flag.Int("bin", 8, "LNFA bin size (1..32)")
	threshold := flag.Int("threshold", 16, "bounded-repetition unfolding threshold")
	verbose := flag.Bool("v", false, "print per-pattern decision trails")
	analyze := flag.Bool("analyze", false, "estimate per-pattern DFA size (capped subset construction)")
	mnrlOut := flag.String("mnrl", "", "export the basic-NFA forms as an MNRL file")
	floorplan := flag.Bool("floorplan", false, "print the ASCII tile floor plan of the placement")
	bitstreamOut := flag.String("bitstream", "", "write the deployment configuration image to a file")
	diff := flag.Bool("diff", false, "diff two image files (old.img new.img) into a reconfiguration delta")
	explain := flag.Bool("explain", false, "print the per-pattern literal-prefilter verdict of the software fast path")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: rapc -diff old.img new.img")
			os.Exit(2)
		}
		if err := diffImages(flag.Arg(0), flag.Arg(1)); err != nil {
			fatal(err)
		}
		return
	}

	patterns := flag.Args()
	if *file != "" {
		pats, err := patfile.Read(*file)
		if err != nil {
			fatal(err)
		}
		patterns = append(patterns, pats...)
	}
	if len(patterns) == 0 {
		fmt.Fprintln(os.Stderr, "usage: rapc [flags] pattern...   (or -f file)")
		os.Exit(2)
	}

	if *explain {
		explainPrefilter(patterns)
		return
	}

	res := compile.Compile(patterns, compile.Options{UnfoldThreshold: *threshold})
	t := &metrics.Table{
		Name:   "Compilation",
		Header: []string{"#", "Pattern", "Mode", "STEs", "BV bits", "Unfolded"},
	}
	if *analyze {
		t.Header = append(t.Header, "DFA states")
	}
	for i := range res.Regexes {
		c := &res.Regexes[i]
		if c.Source == "" {
			cells := []interface{}{i, patterns[i], "ERROR", "-", "-", "-"}
			if *analyze {
				cells = append(cells, "-")
			}
			t.AddRow(cells...)
			continue
		}
		cells := []interface{}{i, truncate(c.Source, 40), c.Mode.String(), c.STEs, c.BVBits, c.UnfoldedSTEs}
		if *analyze {
			cells = append(cells, dfaCell(c.Source))
		}
		t.AddRow(cells...)
		if *verbose {
			fmt.Printf("  #%d: %s\n", i, c.DecisionTrail)
		}
	}
	fmt.Println(t.String())
	if *mnrlOut != "" {
		if err := exportMNRL(*mnrlOut, patterns); err != nil {
			fatal(err)
		}
		fmt.Printf("MNRL export: %s\n", *mnrlOut)
	}
	for _, err := range res.Errors {
		fmt.Fprintf(os.Stderr, "rapc: %v\n", err)
	}

	p, err := mapper.Map(res, mapper.Options{Depth: *depth, BinSize: *bin})
	if err != nil {
		fatal(err)
	}
	area := sim.RAPArea(p)
	fmt.Printf("Placement: %d arrays, %d tiles, %d banks, %.4f mm² (depth %d, bin %d)\n",
		len(p.Arrays), p.TilesUsed(), p.Banks(), area.TotalMM2(), *depth, *bin)
	if *floorplan {
		fmt.Println()
		fmt.Print(p.Floorplan())
	}
	if *bitstreamOut != "" {
		img, err := bitstream.Build(res, p)
		if err != nil {
			fatal(err)
		}
		data, err := img.MarshalBinary()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*bitstreamOut, data, 0o644); err != nil {
			fatal(err)
		}
		st := img.Summarize()
		fmt.Printf("Bitstream: %s (%d bytes; %d CC cols, %d BV cols, %d local dots, %d global dots)\n",
			*bitstreamOut, st.SizeBytes, st.CCColumns, st.BVColumns, st.SwitchDots, st.GlobalDots)
	}
	shares := res.ModeShares()
	fmt.Printf("Mode shares: NFA %.0f%%, NBVA %.0f%%, LNFA %.0f%%\n",
		100*shares[compile.ModeNFA], 100*shares[compile.ModeNBVA], 100*shares[compile.ModeLNFA])
}

// explainPrefilter compiles each pattern on its own through the software
// reference matcher and prints its fast-path verdict: the mandatory
// literal set gating it, or the reason it stays always-on. Per-pattern
// compilation tolerates individual errors without losing the rest.
func explainPrefilter(patterns []string) {
	t := &metrics.Table{
		Name:   "Fast-path verdicts (software reference matcher)",
		Header: []string{"#", "Pattern", "Engine", "Fast path"},
	}
	for i, p := range patterns {
		m, err := refmatch.Compile(context.Background(), []string{p}, refmatch.Options{})
		if err != nil {
			t.AddRow(i, truncate(p, 40), "ERROR", err.Error())
			continue
		}
		t.AddRow(i, truncate(p, 40), m.Engines()[0].String(), m.PrefilterVerdicts()[0].String())
	}
	fmt.Println(t.String())
}

// diffImages loads two deployment images, computes the reconfiguration
// delta between them and prints its records, serialized size and modeled
// reload cost next to a full-image redeploy of the target.
func diffImages(oldPath, newPath string) error {
	oldImg, err := loadImage(oldPath)
	if err != nil {
		return err
	}
	newImg, err := loadImage(newPath)
	if err != nil {
		return err
	}
	d := reconfig.Diff(oldImg, newImg)
	data, err := d.MarshalBinary()
	if err != nil {
		return err
	}

	t := &metrics.Table{
		Name:   "Delta records",
		Header: []string{"Record", "Count"},
	}
	t.AddRow("array replace", len(d.Replaces))
	t.AddRow("array header", len(d.Headers))
	t.AddRow("tile meta", len(d.TileMetas))
	t.AddRow("CAM column", len(d.Codes))
	t.AddRow("local switch row", len(d.LocalRows))
	t.AddRow("global switch row", len(d.GlobalRows))
	t.AddRow("total", d.Records())
	fmt.Println(t.String())

	inc := reconfig.CostOf(d)
	full := reconfig.FullCost(newImg)
	touched := len(d.TouchedArrays())
	fmt.Printf("Arrays: %d touched of %d in target\n", touched, len(newImg.Arrays))
	fmt.Printf("Bitstream: delta %d bytes vs full image %d bytes (%s smaller)\n",
		len(data), newImg.SizeBytes(), metrics.Ratio(float64(newImg.SizeBytes()), float64(len(data))))
	fmt.Printf("Reload:    delta %d cycles, %.1f pJ, %.3f µs\n",
		inc.ReloadCycles, inc.EnergyPJ, inc.LatencyUS())
	fmt.Printf("Full:      %d cycles, %.1f pJ, %.3f µs\n",
		full.ReloadCycles, full.EnergyPJ, full.LatencyUS())
	if plan, err := reconfig.Schedule(d, newImg); err == nil {
		fmt.Printf("Schedule:  %d arrays stall for %d cycles (%.3f µs); %d arrays keep matching\n",
			touched, plan.StallCycles, plan.LatencyUS(), plan.UntouchedArrays)
	}
	return nil
}

func loadImage(path string) (*bitstream.Image, error) {
	// Zero-copy ingest: the image is parsed straight off the mapped pages
	// (Parse copies every field, so unmapping afterwards is safe).
	buf, err := input.Open(path)
	if err != nil {
		return nil, err
	}
	defer buf.Close()
	img, err := bitstream.Parse(buf.Data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return img, nil
}

// dfaCell estimates the DFA size of one pattern (capped), the §2.1
// blowup the NFA/NBVA execution avoids.
func dfaCell(pattern string) string {
	re, err := regexast.Parse(pattern)
	if err != nil {
		return "-"
	}
	nfa, err := automata.Glushkov(re, 0)
	if err != nil {
		return ">cap"
	}
	res := automata.DFASize(nfa, 50000)
	if res.Capped {
		return fmt.Sprintf(">%d", res.States)
	}
	return fmt.Sprintf("%d", res.States)
}

// exportMNRL writes the basic-NFA form of every pattern as MNRL.
func exportMNRL(path string, patterns []string) error {
	f := &mnrl.File{}
	for _, p := range patterns {
		re, err := regexast.Parse(p)
		if err != nil {
			return err
		}
		nfa, err := automata.Glushkov(re, 0)
		if err != nil {
			return fmt.Errorf("%q: %w", p, err)
		}
		f.Networks = append(f.Networks, mnrl.FromNFA(p, nfa))
	}
	w, err := os.Create(path)
	if err != nil {
		return err
	}
	defer w.Close()
	return mnrl.Write(w, f)
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rapc:", err)
	os.Exit(1)
}
