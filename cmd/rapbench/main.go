// Command rapbench regenerates the paper's evaluation tables and figures
// (§5) on the synthetic workloads. It mirrors the artifact's
// main_gap.py interface:
//
//	rapbench -exp table2                 # one experiment
//	rapbench -exp all -out ./result      # everything, with CSV outputs
//	rapbench -exp fig12 -scale 0.5 -input 50000
//	rapbench -exp service -json ./bench  # machine-readable BENCH_service.json
//	rapbench -exp sfa                    # data-parallel scan vs serial speedup
//	rapbench -exp qos                    # noisy-neighbor isolation (per-tenant QoS)
//	rapbench -exp slo                    # SLO burn-rate control loop (shed vs baseline)
//	rapbench -exp cluster                # 3-node vs 1-node aggregate scan throughput
//
// Experiments: fig1, fig10a, fig10b, table2, table3, fig11, fig12, fig13,
// table4, ablation, characterize, flows, reconfig, service, scan, compile,
// sfa, qos, slo, cluster, all. The reconfig experiment is beyond-paper: it prices live ruleset
// updates (delta bitstream + tile quiesce/reload) against full
// redeployment; the service experiment benchmarks the serving stack
// (cache + worker pool) against direct matcher calls; the scan experiment
// measures the fast-path scan engine (mandatory-literal prefilter +
// zero-alloc kernels) against the always-on scan path on a literal-bearing
// workload; the compile experiment measures the staged compile pipeline's
// parallel per-pattern fan-out against the serial baseline on the merged
// §5.1 ruleset, with a byte-identical-output determinism check; the qos
// experiment measures multi-tenant isolation — a within-limits victim
// tenant's p99 with and without a rate-limited noisy tenant flooding the
// same workers, asserting the victim takes zero 429s either way; the slo
// experiment closes the observability loop — a two-tenant load at ~2x
// capacity runs with and without SLO-driven admission, showing the
// burn-rate controller shedding the heavy tenant until the latency
// objective's fast burn drops back under its limit while the unshed
// baseline stays breached; the cluster experiment measures capacity
// scaling — 12 rulesets scanned round-robin against nodes whose
// program cache holds 4, where one node recompiles on every scan and a
// 3-node sharded cluster keeps the whole working set compiled.
//
// -json DIR additionally writes one BENCH_<exp>.json per experiment —
// result table plus config, wall time and build identity — so CI can
// archive the perf trajectory run over run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/telemetry"
)

// benchRecord is the BENCH_<exp>.json schema.
type benchRecord struct {
	Name            string              `json:"name"`
	Timestamp       string              `json:"timestamp"`
	DurationSeconds float64             `json:"duration_seconds"`
	GOOS            string              `json:"goos"`
	GOARCH          string              `json:"goarch"`
	NumCPU          int                 `json:"num_cpu"`
	Build           telemetry.BuildInfo `json:"build"`
	Config          experiments.Config  `json:"config"`
	Table           *metrics.Table      `json:"table"`
}

func main() {
	exp := flag.String("exp", "all", "experiment to run: "+strings.Join(experiments.Names, ", ")+", or all")
	scale := flag.Float64("scale", 1.0, "workload scale factor (pattern count multiplier)")
	seed := flag.Int64("seed", 1, "workload generation seed")
	inputLen := flag.Int("input", 100000, "input stream length in characters")
	out := flag.String("out", "", "directory for CSV outputs (optional)")
	jsonDir := flag.String("json", "", "directory for machine-readable BENCH_<exp>.json records (optional)")
	parallel := flag.Bool("parallel", true, "run per-dataset work concurrently")
	guard := flag.String("guard", "", "baseline BENCH_scan.json: exit non-zero if the scan headline (best Teddy MB/s) drops more than 20% below it")
	flag.Parse()

	cfg := experiments.Config{Scale: *scale, Seed: *seed, InputLen: *inputLen, OutDir: *out, Parallel: *parallel}

	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names
	}
	for _, name := range names {
		start := time.Now()
		t, err := experiments.Run(name, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rapbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		fmt.Println(t.String())
		fmt.Printf("(%s in %.1fs)\n\n", name, elapsed.Seconds())
		if *guard != "" && name == "scan" {
			if err := guardScan(t, *guard); err != nil {
				fmt.Fprintf(os.Stderr, "rapbench: %v\n", err)
				os.Exit(1)
			}
		}
		if *jsonDir != "" {
			rec := benchRecord{
				Name:            name,
				Timestamp:       start.UTC().Format(time.RFC3339),
				DurationSeconds: elapsed.Seconds(),
				GOOS:            runtime.GOOS,
				GOARCH:          runtime.GOARCH,
				NumCPU:          runtime.NumCPU(),
				Build:           telemetry.Build(),
				Config:          cfg,
				Table:           t,
			}
			path := filepath.Join(*jsonDir, "BENCH_"+name+".json")
			if err := metrics.SaveJSON(path, rec); err != nil {
				fmt.Fprintf(os.Stderr, "rapbench: %s: %v\n", name, err)
				os.Exit(1)
			}
		}
	}
	if *out != "" {
		fmt.Printf("CSV outputs written to %s\n", *out)
	}
	if *jsonDir != "" {
		fmt.Printf("BENCH_*.json records written to %s\n", *jsonDir)
	}
}

// guardTolerance is how far the scan headline may fall below the
// committed baseline before the guard fails the run. Benchmarks on shared
// CI runners are noisy; 20% catches real kernel regressions (which cost
// 2x+) without tripping on scheduler jitter.
const guardTolerance = 0.80

// guardScan compares the fresh scan table's headline (best Teddy MB/s
// cell) against the committed baseline record and fails on a regression
// beyond the tolerance.
func guardScan(t *metrics.Table, baselinePath string) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("guard: %w", err)
	}
	var base benchRecord
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("guard: %s: %w", baselinePath, err)
	}
	const column = "Teddy MB/s"
	want, err := experiments.ScanHeadline(base.Table, column)
	if err != nil {
		return fmt.Errorf("guard: baseline: %w", err)
	}
	got, err := experiments.ScanHeadline(t, column)
	if err != nil {
		return fmt.Errorf("guard: current: %w", err)
	}
	if got < want*guardTolerance {
		return fmt.Errorf("guard: scan headline %.1f MB/s is %.0f%% below the committed baseline %.1f MB/s (tolerance %.0f%%)",
			got, 100*(1-got/want), want, 100*(1-guardTolerance))
	}
	fmt.Printf("guard: scan headline %.1f MB/s vs baseline %.1f MB/s — ok\n\n", got, want)
	return nil
}
