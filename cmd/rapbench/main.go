// Command rapbench regenerates the paper's evaluation tables and figures
// (§5) on the synthetic workloads. It mirrors the artifact's
// main_gap.py interface:
//
//	rapbench -exp table2                 # one experiment
//	rapbench -exp all -out ./result      # everything, with CSV outputs
//	rapbench -exp fig12 -scale 0.5 -input 50000
//
// Experiments: fig1, fig10a, fig10b, table2, table3, fig11, fig12, fig13,
// table4, ablation, characterize, flows, reconfig, all. The reconfig
// experiment is beyond-paper: it prices live ruleset updates (delta
// bitstream + tile quiesce/reload) against full redeployment.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: "+strings.Join(experiments.Names, ", ")+", or all")
	scale := flag.Float64("scale", 1.0, "workload scale factor (pattern count multiplier)")
	seed := flag.Int64("seed", 1, "workload generation seed")
	inputLen := flag.Int("input", 100000, "input stream length in characters")
	out := flag.String("out", "", "directory for CSV outputs (optional)")
	parallel := flag.Bool("parallel", true, "run per-dataset work concurrently")
	flag.Parse()

	cfg := experiments.Config{Scale: *scale, Seed: *seed, InputLen: *inputLen, OutDir: *out, Parallel: *parallel}

	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names
	}
	for _, name := range names {
		start := time.Now()
		t, err := experiments.Run(name, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rapbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(t.String())
		fmt.Printf("(%s in %.1fs)\n\n", name, time.Since(start).Seconds())
	}
	if *out != "" {
		fmt.Printf("CSV outputs written to %s\n", *out)
	}
}
