// Command rapserve runs the multi-tenant streaming match service: a
// long-lived HTTP server in front of the refmatch engine with a compiled-
// program cache, persistent per-session scan state, and a sharded worker
// pool (see internal/service).
//
//	rapserve -addr :8844
//
//	# compile (or cache-hit) a ruleset
//	curl -s localhost:8844/programs -d '{"patterns":["cat","ab{10,48}c"]}'
//	# live ruleset hot-swap: same ID, open sessions stay on the old rules
//	curl -s -X PUT localhost:8844/programs/$ID -d '{"patterns":["dog"]}'
//	# one-shot scan
//	curl -s localhost:8844/programs/$ID/scan --data-binary @input.bin
//	# streaming session
//	curl -s localhost:8844/sessions -d '{"program_id":"'$ID'"}'
//	curl -s localhost:8844/sessions/$SID/data --data-binary @chunk1.bin
//	curl -s -X DELETE localhost:8844/sessions/$SID
//	# counters
//	curl -s localhost:8844/stats
//
// Optionally a ruleset can be preloaded at startup with -f, so the first
// request needs no compile round trip.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/patfile"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8844", "listen address")
	workers := flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "bounded queue depth per worker (full queue -> 429)")
	cacheSize := flag.Int("cache", 128, "compiled-program LRU capacity")
	maxSessions := flag.Int("max-sessions", 4096, "open streaming session cap")
	preload := flag.String("f", "", "preload a pattern file (one pattern per line) into the cache")
	flag.Parse()

	svc := service.New(service.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		ProgramCacheSize: *cacheSize,
		MaxSessions:      *maxSessions,
	})
	defer svc.Close()

	if *preload != "" {
		patterns, err := patfile.Read(*preload)
		if err != nil {
			fatal(err)
		}
		prog, _, err := svc.Compile(patterns, service.CompileOptions{})
		if err != nil {
			fatal(fmt.Errorf("preload %s: %w", *preload, err))
		}
		fmt.Printf("rapserve: preloaded %d patterns as program %s\n", len(patterns), prog.ID)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("rapserve: listening on %s\n", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fatal(err)
	case s := <-sig:
		fmt.Printf("rapserve: %v, draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fatal(err)
		}
		// The listener is stopped; flush every open streaming session so
		// end-anchored matches are emitted rather than silently dropped.
		drained := svc.DrainSessions()
		finals := 0
		for _, d := range drained {
			finals += len(d.FinalMatches)
			fmt.Printf("rapserve: drained %s (program %s, %d bytes, %d matches, %d at end)\n",
				d.Summary.SessionID, d.Summary.ProgramID, d.Summary.Bytes,
				d.Summary.Matches, len(d.FinalMatches))
		}
		fmt.Printf("rapserve: drained %d sessions, %d end-anchored matches\n", len(drained), finals)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rapserve:", err)
	os.Exit(1)
}
