// Command rapserve runs the multi-tenant streaming match service: a
// long-lived HTTP server in front of the refmatch engine with a compiled-
// program cache, persistent per-session scan state, a sharded worker
// pool, and a full observability surface (see internal/service and
// internal/telemetry).
//
//	rapserve -addr :8844
//
//	# compile (or cache-hit) a ruleset
//	curl -s localhost:8844/v1/programs -d '{"patterns":["cat","ab{10,48}c"]}'
//	# live ruleset hot-swap: same ID, open sessions stay on the old rules
//	curl -s -X PUT localhost:8844/v1/programs/$ID -d '{"patterns":["dog"]}'
//	# one-shot scan
//	curl -s localhost:8844/v1/programs/$ID/scan --data-binary @input.bin
//	# streaming session
//	curl -s localhost:8844/v1/sessions -d '{"program_id":"'$ID'"}'
//	curl -s localhost:8844/v1/sessions/$SID/data --data-binary @chunk1.bin
//	curl -s -X DELETE localhost:8844/v1/sessions/$SID
//	# counters (JSON), Prometheus exposition, recent slow traces
//	curl -s localhost:8844/v1/stats
//	curl -s localhost:8844/metrics
//	curl -s localhost:8844/debug/traces
//
// Every request is traced (incoming traceparent headers are honored, the
// trace ID is echoed as X-Trace-Id) and logged as one structured slog
// line. -pprof additionally mounts net/http/pprof under /debug/pprof/.
// Optionally a ruleset can be preloaded at startup with -f, so the first
// request needs no compile round trip.
//
// Multi-tenant QoS: requests are attributed to the tenant named by the
// identity header (-tenant-header, default X-RAP-Tenant; absent maps to
// "anonymous"), and -qos-config points at a JSON file of per-tenant
// limits (weight, scan bytes/sec + burst, session and compile-slot caps,
// speculative pre-compilation opt-in — see internal/qos.Config). SIGHUP
// reloads the file in place: live tenants are re-limited without a
// restart, keeping their accounting state.
//
// SLO engine: -slo-config points at a JSON file of burn-rate objectives
// (see internal/slo.Config); SIGHUP reloads it alongside the QoS file,
// preserving the rolling good/bad counts of unchanged objectives. Health
// scoring is served at /v1/health (component scores) and /readyz (503
// when critical); /debug/slo exposes burn rates, the admission shed
// level, and the breach log with linked trace IDs. -health-addr starts a
// second listener carrying only /healthz, /readyz, /v1/health and
// /metrics, so monitoring can live off the request port.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/patfile"
	"repro/internal/qos"
	"repro/internal/service"
	"repro/internal/slo"
	"repro/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8844", "listen address")
	workers := flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "bounded queue depth per worker (full queue -> 429)")
	cacheSize := flag.Int("cache", 128, "compiled-program LRU capacity")
	maxSessions := flag.Int("max-sessions", 4096, "open streaming session cap")
	preload := flag.String("f", "", "preload a pattern file (one pattern per line) into the cache")
	logFormat := flag.String("log", "text", "access/runtime log format: text or json")
	slowTrace := flag.Duration("slow-trace", 0, "retain only traces at least this slow in /debug/traces (0 = all)")
	traceRing := flag.Int("trace-ring", 128, "finished traces retained for /debug/traces")
	pprofOn := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	parMin := flag.Int("parallel-scan-min-bytes", 0, "one-shot scan bodies at least this large use the data-parallel SFA path (0 = off)")
	parWorkers := flag.Int("parallel-scan-workers", 0, "worker fan-out per parallel scan (0 = GOMAXPROCS)")
	tenantHeader := flag.String("tenant-header", "", "tenant identity header (default "+qos.DefaultHeader+")")
	qosConfig := flag.String("qos-config", "", "JSON per-tenant limits file (SIGHUP reloads it in place)")
	sloConfig := flag.String("slo-config", "", "JSON SLO objectives file (SIGHUP reloads it in place)")
	healthAddr := flag.String("health-addr", "", "optional second listener serving only /healthz, /readyz, /v1/health and /metrics")
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stdout, nil)
	case "text":
		handler = slog.NewTextHandler(os.Stdout, nil)
	default:
		fatal(fmt.Errorf("unknown -log format %q (want text or json)", *logFormat))
	}
	logger := slog.New(handler)

	qosCfg := qos.Config{Header: *tenantHeader}
	if *qosConfig != "" {
		loaded, err := qos.LoadFile(*qosConfig)
		if err != nil {
			fatal(err)
		}
		if *tenantHeader != "" {
			loaded.Header = *tenantHeader // flag wins over file
		}
		qosCfg = loaded
	}

	sloCfg := slo.Config{}
	if *sloConfig != "" {
		loaded, err := slo.LoadFile(*sloConfig)
		if err != nil {
			fatal(err)
		}
		sloCfg = loaded
	}

	svc := service.New(service.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		ProgramCacheSize: *cacheSize,
		MaxSessions:      *maxSessions,
		Logger:           logger,
		TraceRing:        *traceRing,
		SlowTrace:        *slowTrace,

		ParallelScanMinBytes: *parMin,
		ParallelScanWorkers:  *parWorkers,
		QoS:                  qosCfg,
		SLO:                  sloCfg,
	})
	defer svc.Close()

	// SIGHUP re-reads the tenant-limits and SLO-objectives files and
	// applies both in place (no restart, accounting and burn-rate state
	// survive). Each applied file gets a one-line change summary.
	if *qosConfig != "" || *sloConfig != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				if *qosConfig != "" {
					loaded, err := qos.LoadFile(*qosConfig)
					if err != nil {
						logger.Error("qos reload failed", "file", *qosConfig, "err", err)
					} else {
						if *tenantHeader != "" {
							loaded.Header = *tenantHeader
						}
						svc.QoS().SetConfig(loaded)
						logger.Info("qos reloaded", "file", *qosConfig, "tenants", len(loaded.Tenants))
					}
				}
				if *sloConfig != "" {
					loaded, err := slo.LoadFile(*sloConfig)
					if err != nil {
						logger.Error("slo reload failed", "file", *sloConfig, "err", err)
					} else {
						svc.SLO().SetConfig(loaded)
						applied := svc.SLO().Config()
						logger.Info("slo reloaded", "file", *sloConfig,
							"objectives", len(applied.Objectives),
							"admission", applied.Admission.Enabled,
							"admission_objective", applied.Admission.Objective)
					}
				}
			}
		}()
	}

	// Goroutine/heap/GC gauges land on the same /metrics endpoint as the
	// service counters, so one scrape captures process + workload health.
	telemetry.RegisterRuntimeMetrics(svc.Telemetry())

	if *preload != "" {
		patterns, err := patfile.Read(*preload)
		if err != nil {
			fatal(err)
		}
		prog, _, err := svc.Compile(context.Background(), patterns, service.CompileOptions{})
		if err != nil {
			fatal(fmt.Errorf("preload %s: %w", *preload, err))
		}
		logger.Info("preloaded ruleset", "patterns", len(patterns), "program", prog.ID)
	}

	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)

	// Optional monitoring listener: health probes and the metrics scrape
	// on a port that can stay off the request path (and off its ACLs).
	if *healthAddr != "" {
		hm := http.NewServeMux()
		hm.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"status":"ok"}`)
		})
		hm.Handle("GET /readyz", slo.ReadyHandler(svc.Health()))
		hm.Handle("GET /v1/health", slo.HealthHandler(svc.Health()))
		hm.Handle("GET /metrics", svc.Telemetry().Handler())
		hsrv := &http.Server{Addr: *healthAddr, Handler: hm, ReadHeaderTimeout: 10 * time.Second}
		go func() { errCh <- hsrv.ListenAndServe() }()
		logger.Info("health listener", "addr", *healthAddr)
	}

	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "pprof", *pprofOn,
		"go_version", telemetry.Build().GoVersion, "revision", telemetry.Build().Revision)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fatal(err)
	case s := <-sig:
		logger.Info("draining", "signal", s.String())
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fatal(err)
		}
		// The listener is stopped; flush every open streaming session so
		// end-anchored matches are emitted rather than silently dropped.
		drained := svc.DrainSessions()
		finals := 0
		for _, d := range drained {
			finals += len(d.FinalMatches)
			logger.Info("drained session",
				"session", d.Summary.SessionID, "program", d.Summary.ProgramID,
				"bytes", d.Summary.Bytes, "matches", d.Summary.Matches,
				"end_anchored", len(d.FinalMatches))
		}
		logger.Info("drained", "sessions", len(drained), "end_anchored_matches", finals)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rapserve:", err)
	os.Exit(1)
}
