// Command rapgen materializes the synthetic benchmarks: pattern files
// (one regex per line), input streams with planted matches, and optional
// MNRL exports of the compiled basic NFAs (the format the RAP artifact
// ships its datasets in).
//
//	rapgen -data Snort -out ./data              # Snort.txt + Snort.input
//	rapgen -data All -scale 0.5 -mnrl -out ./data
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	anmlpkg "repro/internal/anml"
	"repro/internal/automata"
	"repro/internal/mnrl"
	"repro/internal/regexast"
	"repro/internal/workload"
)

func main() {
	data := flag.String("data", "All", "dataset name or All: "+strings.Join(workload.Names, ", "))
	scale := flag.Float64("scale", 1.0, "pattern count scale factor")
	seed := flag.Int64("seed", 1, "generation seed")
	inputLen := flag.Int("len", 100000, "input stream length")
	out := flag.String("out", ".", "output directory")
	doMNRL := flag.Bool("mnrl", false, "also export compiled basic NFAs as MNRL JSON")
	doANML := flag.Bool("anml", false, "also export compiled basic NFAs as ANML XML")
	anml := flag.Bool("anmlzoo", false, "generate the ANMLZoo-like set instead")
	flag.Parse()

	names := []string{*data}
	if *data == "All" {
		names = workload.Names
		if *anml {
			names = workload.ANMLZooNames
		}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, name := range names {
		var d *workload.Dataset
		var err error
		if *anml {
			d, err = workload.GenerateANMLZoo(name, *scale, *seed)
		} else {
			d, err = workload.Generate(name, *scale, *seed)
		}
		if err != nil {
			fatal(err)
		}
		base := strings.ReplaceAll(d.Name, "/", "_")
		patPath := filepath.Join(*out, base+".txt")
		if err := os.WriteFile(patPath, []byte(strings.Join(d.Patterns, "\n")+"\n"), 0o644); err != nil {
			fatal(err)
		}
		inPath := filepath.Join(*out, base+".input")
		if err := os.WriteFile(inPath, d.Input(*inputLen, *seed+100), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d patterns -> %s, %d-byte input -> %s\n",
			d.Name, len(d.Patterns), patPath, *inputLen, inPath)
		if *doMNRL || *doANML {
			nfas, sources, skipped := compileNFAs(d.Patterns)
			if *doMNRL {
				f := &mnrl.File{}
				for i, nfa := range nfas {
					f.Networks = append(f.Networks, mnrl.FromNFA(sources[i], nfa))
				}
				mPath := filepath.Join(*out, base+".mnrl")
				if err := writeTo(mPath, func(w *os.File) error { return mnrl.Write(w, f) }); err != nil {
					fatal(err)
				}
				fmt.Printf("  MNRL: %d networks -> %s (%d skipped over capacity)\n",
					len(f.Networks), mPath, skipped)
			}
			if *doANML {
				doc := &anmlpkg.Document{}
				for i, nfa := range nfas {
					doc.Networks = append(doc.Networks, anmlpkg.FromNFA(sources[i], nfa))
				}
				aPath := filepath.Join(*out, base+".anml")
				if err := writeTo(aPath, func(w *os.File) error { return anmlpkg.Write(w, doc) }); err != nil {
					fatal(err)
				}
				fmt.Printf("  ANML: %d networks -> %s (%d skipped over capacity)\n",
					len(doc.Networks), aPath, skipped)
			}
		}
	}
}

// compileNFAs builds the basic-NFA form of every pattern, skipping the
// ones whose unfolded form exceeds the capacity.
func compileNFAs(patterns []string) (nfas []*automata.NFA, sources []string, skipped int) {
	for _, p := range patterns {
		re, err := regexast.Parse(p)
		if err != nil {
			fatal(err)
		}
		nfa, err := automata.Glushkov(re, 0)
		if err != nil {
			skipped++
			continue
		}
		nfas = append(nfas, nfa)
		sources = append(sources, p)
	}
	return nfas, sources, skipped
}

func writeTo(path string, write func(*os.File) error) error {
	w, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(w); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rapgen:", err)
	os.Exit(1)
}
