// Command rapsim runs the cycle-level simulator: it compiles a pattern
// set, maps it, streams an input file (or a generated synthetic stream)
// through the modeled hardware and reports matches, energy, area,
// throughput and power. The -arch flag selects RAP or one of the §5
// baselines.
//
//	rapsim -p 'ab{10,48}c' -p 'needle' -in data.bin
//	rapsim -f rules.txt -gen Snort -len 100000 -arch CAMA
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/automata"
	"repro/internal/compile"
	"repro/internal/core"
	ingest "repro/internal/input"
	"repro/internal/mapper"
	"repro/internal/mnrl"
	"repro/internal/patfile"
	"repro/internal/sim"
	"repro/internal/workload"
)

type patternList []string

func (p *patternList) String() string     { return strings.Join(*p, ",") }
func (p *patternList) Set(s string) error { *p = append(*p, s); return nil }

func main() {
	var patterns patternList
	flag.Var(&patterns, "p", "pattern (repeatable)")
	file := flag.String("f", "", "read patterns from file (one per line)")
	mnrlFile := flag.String("mnrl", "", "load pre-compiled automata from an MNRL file (NFA mode)")
	inFile := flag.String("in", "", "input stream file")
	gen := flag.String("gen", "", "generate input from a synthetic dataset profile (RegexLib, Prosite, SpamAssassin, Snort, Suricata, Yara, ClamAV)")
	genLen := flag.Int("len", 100000, "generated input length")
	seed := flag.Int64("seed", 1, "generation seed")
	archName := flag.String("arch", "RAP", "architecture: RAP, RAP-NFA, CAMA, CA, BVAP")
	depth := flag.Int("depth", 8, "NBVA bit-vector depth")
	bin := flag.Int("bin", 8, "LNFA bin size")
	traceFile := flag.String("trace", "", "write JSONL cycle trace (matches, BV phases) to a file")
	flag.Parse()

	if *file != "" {
		pats, err := patfile.Read(*file)
		if err != nil {
			fatal(err)
		}
		patterns = append(patterns, pats...)
	}
	var input []byte
	switch {
	case *inFile != "":
		// Zero-copy ingest: the scan engines read straight from the mapped
		// pages; the mapping stays live for the whole run.
		buf, err := ingest.Open(*inFile)
		if err != nil {
			fatal(err)
		}
		defer buf.Close()
		input = buf.Data
	case *gen != "":
		d, err := workload.Generate(*gen, 1, *seed)
		if err != nil {
			fatal(err)
		}
		if len(patterns) == 0 {
			patterns = d.Patterns
		}
		input = d.Input(*genLen, *seed+100)
	default:
		fmt.Fprintln(os.Stderr, "rapsim: need -in FILE or -gen DATASET")
		os.Exit(2)
	}
	if *mnrlFile != "" {
		runMNRL(*mnrlFile, input)
		return
	}
	if len(patterns) == 0 {
		fmt.Fprintln(os.Stderr, "rapsim: no patterns (use -p, -f, -mnrl, or -gen)")
		os.Exit(2)
	}

	eng := core.New(core.Config{Depth: *depth, BinSize: *bin})
	var rep *sim.Report
	var err error
	if *archName == "RAP" {
		var prog *core.Program
		prog, err = eng.Compile(patterns)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Compiled %d patterns: %d STEs, %.4f mm², %d arrays\n",
			len(patterns), prog.STEs(), prog.AreaMM2(), len(prog.Placement.Arrays))
		if *traceFile != "" {
			tf, terr := os.Create(*traceFile)
			if terr != nil {
				fatal(terr)
			}
			if terr := sim.Trace(prog.Result, prog.Placement, input, tf); terr != nil {
				fatal(terr)
			}
			tf.Close()
			fmt.Printf("Trace written to %s\n", *traceFile)
		}
		rep, err = eng.Run(prog, input)
	} else {
		rep, err = eng.RunBaseline(core.Baseline(*archName), patterns, input)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Println(rep.String())
	fmt.Printf("  cycles: %d (stalls %d, IO interrupts %d), energy breakdown (pJ): CAM %.0f, switch %.0f, global %.0f, ctrl %.0f, BVM %.0f, wire %.0f, leak %.0f\n",
		rep.Cycles, rep.StallCycles, rep.IOInterrupts,
		rep.Energy.CAM, rep.Energy.LocalSwitch, rep.Energy.GlobalSwitch,
		rep.Energy.Controller, rep.Energy.BVM, rep.Energy.Wire, rep.Energy.Leakage)
	if len(rep.PerRegex) > 0 {
		type hit struct {
			ri int
			n  int64
		}
		var hits []hit
		for ri, n := range rep.PerRegex {
			hits = append(hits, hit{ri, n})
		}
		sort.Slice(hits, func(i, j int) bool { return hits[i].n > hits[j].n })
		fmt.Println("  top matching patterns:")
		for i, h := range hits {
			if i >= 5 {
				break
			}
			label := fmt.Sprintf("#%d", h.ri)
			if h.ri < len(patterns) {
				label = fmt.Sprintf("%q", truncatePattern(patterns[h.ri], 40))
			}
			fmt.Printf("    %6d  %s\n", h.n, label)
		}
	}
}

func truncatePattern(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}

// runMNRL simulates pre-compiled automata loaded from an MNRL file in
// RAP's NFA mode.
func runMNRL(path string, input []byte) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	file, err := mnrl.Read(f)
	if err != nil {
		fatal(err)
	}
	nets := file.Networks
	nfaList := make([]*automata.NFA, 0, len(nets))
	ids := make([]string, 0, len(nets))
	for _, net := range nets {
		nfa, err := net.ToNFA()
		if err != nil {
			fatal(fmt.Errorf("network %s: %w", net.ID, err))
		}
		nfaList = append(nfaList, nfa)
		ids = append(ids, net.ID)
	}
	res := compile.FromNFAs(nfaList, ids)
	p, err := mapper.Map(res, mapper.Options{})
	if err != nil {
		fatal(err)
	}
	rep, err := sim.SimulateRAP(res, p, input)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("MNRL: %d networks in NFA mode\n", len(nfaList))
	fmt.Println(rep.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rapsim:", err)
	os.Exit(1)
}
