// Command rapcluster runs one node of a sharded, replicated rapserve
// cluster (see internal/cluster). Every node serves the full /v1 API;
// clients may point at any of them. Programs are placed on a
// consistent-hash ring over their content-hash IDs, scans fan out over
// each program's replica set, streaming sessions stay sticky to the
// node that opened them, and ruleset updates roll out as canaries
// watched by the burn-rate SLO engine.
//
//	# a three-node local cluster
//	rapcluster -id n1 -addr :8851 -seeds http://localhost:8852,http://localhost:8853
//	rapcluster -id n2 -addr :8852 -seeds http://localhost:8851,http://localhost:8853
//	rapcluster -id n3 -addr :8853 -seeds http://localhost:8851,http://localhost:8852
//
//	# talk to any node; the cluster routes
//	curl -s localhost:8852/v1/programs -d '{"patterns":["cat","dog"]}'
//	curl -s localhost:8851/v1/programs/$ID/scan --data-binary @input.bin
//	# canary rollout: staged on a replica fraction, then promoted or
//	# rolled back on burn-rate/health breach
//	curl -s -X PUT localhost:8853/v1/programs/$ID -d '{"patterns":["bird"]}'
//	# cluster view: membership states, ring, catalog digests
//	curl -s localhost:8851/cluster/members
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/qos"
	"repro/internal/service"
	"repro/internal/slo"
	"repro/internal/telemetry"
)

func main() {
	id := flag.String("id", "", "cluster-unique node name (required)")
	addr := flag.String("addr", ":8851", "listen address")
	advertise := flag.String("advertise", "", "base URL peers reach this node at (default http://<host>:<port> from -addr)")
	seeds := flag.String("seeds", "", "comma-separated peer base URLs to bootstrap gossip")
	replicas := flag.Int("replicas", 2, "placement width per program (owner + replicas)")
	maxReplicas := flag.Int("max-replicas", 0, "hot-program fan-out cap (0 = replicas+1)")
	hotRate := flag.Float64("hot-scan-rate", 200, "routed scans/sec beyond which a program's replica set widens (<0 disables)")
	gossipEvery := flag.Duration("gossip-interval", time.Second, "gossip/reconcile tick")
	canaryFraction := flag.Float64("canary-fraction", 0.34, "replica fraction staged first on ruleset updates (<=0 applies directly)")
	canaryObserve := flag.Duration("canary-observe", 15*time.Second, "how long canaries are watched before promote/rollback")
	canaryMinHealth := flag.Float64("canary-min-health", 0.35, "health score below which a canary rolls back")
	workers := flag.Int("workers", 0, "scan worker count (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "bounded queue depth per worker (full queue -> 429)")
	cacheSize := flag.Int("cache", 128, "compiled-program LRU capacity")
	maxSessions := flag.Int("max-sessions", 4096, "open streaming session cap")
	logFormat := flag.String("log", "text", "log format: text or json")
	tenantHeader := flag.String("tenant-header", "", "tenant identity header (default "+qos.DefaultHeader+")")
	qosConfig := flag.String("qos-config", "", "JSON per-tenant limits file")
	sloConfig := flag.String("slo-config", "", "JSON SLO objectives file")
	flag.Parse()

	if *id == "" {
		fatal(fmt.Errorf("-id is required (a cluster-unique node name)"))
	}

	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stdout, nil)
	case "text":
		handler = slog.NewTextHandler(os.Stdout, nil)
	default:
		fatal(fmt.Errorf("unknown -log format %q (want text or json)", *logFormat))
	}
	logger := slog.New(handler)

	qosCfg := qos.Config{Header: *tenantHeader}
	if *qosConfig != "" {
		loaded, err := qos.LoadFile(*qosConfig)
		if err != nil {
			fatal(err)
		}
		if *tenantHeader != "" {
			loaded.Header = *tenantHeader
		}
		qosCfg = loaded
	}
	sloCfg := slo.Config{}
	if *sloConfig != "" {
		loaded, err := slo.LoadFile(*sloConfig)
		if err != nil {
			fatal(err)
		}
		sloCfg = loaded
	}

	var seedList []string
	for _, s := range strings.Split(*seeds, ",") {
		if s = strings.TrimSpace(s); s != "" {
			seedList = append(seedList, strings.TrimRight(s, "/"))
		}
	}

	node, err := cluster.NewNode(cluster.Config{
		ID:             *id,
		Seeds:          seedList,
		Replicas:       *replicas,
		MaxReplicas:    *maxReplicas,
		HotScanRate:    *hotRate,
		GossipInterval: *gossipEvery,
		Canary: cluster.CanaryConfig{
			Fraction:  *canaryFraction,
			Observe:   *canaryObserve,
			MinHealth: *canaryMinHealth,
		},
		Service: service.Config{
			Workers:          *workers,
			QueueDepth:       *queue,
			ProgramCacheSize: *cacheSize,
			MaxSessions:      *maxSessions,
			Logger:           logger,
			QoS:              qosCfg,
			SLO:              sloCfg,
		},
		Logger: logger,
	})
	if err != nil {
		fatal(err)
	}
	defer node.Close()
	telemetry.RegisterRuntimeMetrics(node.Service().Telemetry())

	adv := *advertise
	if adv == "" {
		host, port, err := net.SplitHostPort(*addr)
		if err != nil {
			fatal(fmt.Errorf("-addr %q: %w (set -advertise explicitly)", *addr, err))
		}
		if host == "" || host == "0.0.0.0" || host == "::" {
			host = "localhost"
		}
		adv = "http://" + net.JoinHostPort(host, port)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           node.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	node.Start(adv)
	logger.Info("cluster node listening", "id", *id, "addr", *addr, "advertise", adv,
		"seeds", len(seedList), "replicas", *replicas,
		"go_version", telemetry.Build().GoVersion, "revision", telemetry.Build().Revision)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fatal(err)
	case s := <-sig:
		logger.Info("draining", "signal", s.String())
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fatal(err)
		}
		// Peers notice the silence and age this node out suspect->dead;
		// local streaming sessions flush their end-anchored matches.
		drained := node.Service().DrainSessions()
		logger.Info("drained", "sessions", len(drained))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rapcluster:", err)
	os.Exit(1)
}
