// Command rapverify runs the differential verification harness: random
// pattern sets and inputs through the RAP cycle simulator, the CAMA / CA /
// BVAP baselines, the software reference matcher, and Go's regexp package,
// reporting any disagreement. It is the standing form of the paper's
// §5.2 Hyperscan consistency check.
//
//	rapverify -trials 200 -patterns 8 -len 5000
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/verify"
)

func main() {
	trials := flag.Int("trials", 100, "number of random (pattern set, input) trials")
	patterns := flag.Int("patterns", 6, "patterns per trial")
	inputLen := flag.Int("len", 2000, "input length per trial")
	seed := flag.Int64("seed", 1, "PRNG seed")
	stdlib := flag.Bool("stdlib", true, "also cross-check against Go's regexp")
	flag.Parse()

	res, err := verify.Run(verify.Options{
		Trials:           *trials,
		PatternsPerTrial: *patterns,
		InputLen:         *inputLen,
		Seed:             *seed,
		CheckStdlib:      *stdlib,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rapverify:", err)
		os.Exit(1)
	}
	fmt.Printf("rapverify: %d trials, engines %v, %d total matches\n",
		res.Trials, res.Engines, res.Matches)
	if len(res.Mismatches) == 0 {
		fmt.Println("all engines agree ✓")
		return
	}
	for _, m := range res.Mismatches {
		fmt.Println("MISMATCH:", m.String())
	}
	os.Exit(1)
}
