// Protein motif search example (Prosite, §5.1): motifs over the
// 20-letter amino-acid alphabet are almost all linear patterns, so RAP
// executes them with Shift-And in LNFA mode. This example shows the LNFA
// binning effect of Fig 10(b): grouping motifs into bins concentrates
// initial states into few tiles and power-gates the rest.
//
//	go run ./examples/proteinmotif
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	ds := workload.MustGenerate("Prosite", 0.6, 13)
	// A synthetic protein database: amino-acid residues with planted
	// motif occurrences.
	db := ds.Input(150_000, 9)
	fmt.Printf("Motifs: %d over alphabet %s\n", len(ds.Patterns), ds.Alphabet)
	fmt.Printf("Example motifs: %s\n\n", strings.Join(ds.Patterns[:3], "  "))

	fmt.Println("LNFA bin-size tradeoff (Fig 10b): energy falls, area may grow")
	fmt.Println("bin    energy(µJ)  area(mm²)  matches")
	for _, bin := range []int{1, 4, 16, 32} {
		eng := core.New(core.Config{BinSize: bin})
		prog, err := eng.Compile(ds.Patterns)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := eng.Run(prog, db)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%3d  %12.2f  %9.4f  %7d\n", bin, rep.EnergyUJ(), rep.Area.TotalMM2(), rep.Matches)
	}

	eng := core.NewDefault()
	bin, _, err := eng.ChooseBinSize(ds.Patterns, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDSE-chosen bin size: %d\n", bin)

	// Cross-check against the software reference matcher.
	matches, err := eng.Match(ds.Patterns, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Software reference finds %d motif occurrences\n", len(matches))
}
