// Cluster example: a three-node rapserve cluster in one process —
// gossip membership, consistent-hash placement, replica fan-out,
// node-sticky streaming sessions and a canary ruleset rollout — driven
// entirely through the typed /v1 client (pkg/rapclient). Any node is a
// gateway: requests are routed to the program's replica set, sessions
// stay pinned to the node that opened them, and a PUT update stages on
// a canary replica before promoting cluster-wide.
//
//	go run ./examples/cluster
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"repro/internal/cluster"
	"repro/internal/service"
	"repro/pkg/rapclient"
)

func main() {
	ctx := context.Background()

	// Three nodes, each a full service plus the cluster layers. The
	// listeners exist before the nodes so every node can seed off all
	// three addresses.
	const size = 3
	nodes := make([]*cluster.Node, size)
	servers := make([]*httptest.Server, size)
	for i := range servers {
		i := i
		servers[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if nodes[i] == nil {
				http.Error(w, "node starting", http.StatusServiceUnavailable)
				return
			}
			nodes[i].Handler().ServeHTTP(w, r)
		}))
		defer servers[i].Close()
	}
	seeds := make([]string, size)
	for i, s := range servers {
		seeds[i] = s.URL
	}
	for i := range nodes {
		n, err := cluster.NewNode(cluster.Config{
			ID:             fmt.Sprintf("node%d", i+1),
			Seeds:          seeds,
			Replicas:       2,
			GossipInterval: 50 * time.Millisecond,
			Canary: cluster.CanaryConfig{
				Fraction: 0.34,
				Observe:  300 * time.Millisecond,
			},
			Service: service.Config{Workers: 1},
		})
		if err != nil {
			log.Fatal(err)
		}
		defer n.Close()
		nodes[i] = n
	}
	for i, n := range nodes {
		n.Start(servers[i].URL)
	}
	waitFor(func() bool {
		for _, n := range nodes {
			if n.Ring().Size() != size {
				return false
			}
		}
		return true
	})
	fmt.Printf("cluster up: %d nodes on the ring\n\n", nodes[0].Ring().Size())

	// Compile through one gateway; the program lands on its
	// content-hash placement (owner + replica), wherever that is.
	gw := rapclient.New(servers[0].URL)
	prog, err := gw.Compile(ctx, []string{"alpha", "beta", "needle[0-9]+"}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %s\n", prog.ID)
	fmt.Printf("placement: %v\n\n", nodes[0].Ring().Placement(prog.ID, 2))

	// Scan via every gateway: non-placement nodes proxy to a replica.
	for i, s := range servers {
		res, err := rapclient.New(s.URL).Scan(ctx, prog.ID, []byte("xx needle42 alpha yy"))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("scan via node%d: %d matches\n", i+1, len(res.Matches))
	}

	// Streaming sessions are node-sticky: the cluster session ID names
	// its home node, so a chunk fed through any gateway lands on the
	// same session state — matches span chunks and gateways.
	sess, err := gw.OpenSession(ctx, prog.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsession %s (home node encoded in the ID)\n", sess.ID)
	if _, err := sess.Feed(ctx, []byte("...al")); err != nil {
		log.Fatal(err)
	}
	other := rapclient.New(servers[1].URL).Session(sess.ID, prog.ID)
	fr, err := other.Feed(ctx, []byte("pha..."))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fed \"...al\" via node1, \"pha...\" via node2: %d cross-chunk match(es)\n", len(fr.Matches))
	if _, err := other.Close(ctx); err != nil {
		log.Fatal(err)
	}

	// Canary rollout: PUT stages the new ruleset on a fraction of the
	// replica set first, watches burn-rate SLOs and health on the
	// canaries, then promotes (or rolls back). The coordinator needs the
	// program in its gossiped catalog first — wait for the digest to
	// reach every node instead of racing the first gossip tick.
	waitFor(func() bool {
		for _, n := range nodes {
			if n.Catalog().Len() == 0 {
				return false
			}
		}
		return true
	})
	// The response is the single-node reconfigure report plus the
	// rollout verdict.
	body, _ := json.Marshal(map[string]any{"patterns": []string{"alpha", "gamma"}})
	req, _ := http.NewRequestWithContext(ctx, http.MethodPut,
		servers[2].URL+"/v1/programs/"+prog.ID, bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	var rollout cluster.RolloutResult
	if err := json.NewDecoder(resp.Body).Decode(&rollout); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("\nrollout: %s (staged %v of %v, delta %dB vs full image %dB)\n",
		rollout.Outcome, rollout.Canaries, rollout.ReplicaSet,
		rollout.DeltaBytes, rollout.FullImageBytes)

	res, err := gw.Scan(ctx, prog.ID, []byte("gamma alpha"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("post-rollout scan: %d matches for the new ruleset\n", len(res.Matches))
}

func waitFor(cond func() bool) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	log.Fatal("cluster did not converge")
}
