// Deployment example: everything that happens before the first input
// byte arrives (§3.3: "the hardware configuration is pre-loaded to RAP
// during deployment"). A rule set is compiled and placed, the tile floor
// plan inspected, the configuration bitstream generated, verified and
// size-accounted, and the automata exported to the AP-ecosystem
// interchange formats (MNRL, ANML) for use by external tools.
//
//	go run ./examples/deployment
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/anml"
	"repro/internal/automata"
	"repro/internal/bitstream"
	"repro/internal/core"
	"repro/internal/mnrl"
	"repro/internal/regexast"
	"repro/internal/workload"
)

func main() {
	ds := workload.MustGenerate("Suricata", 0.2, 17)
	fmt.Printf("Rule set: %d patterns\n\n", len(ds.Patterns))

	eng := core.NewDefault()
	prog, err := eng.Compile(ds.Patterns)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Floor plan: where everything landed.
	fmt.Print(prog.Placement.Floorplan())

	// 2. Configuration bitstream: the deployment artifact.
	img, err := bitstream.Build(prog.Result, prog.Placement)
	if err != nil {
		log.Fatal(err)
	}
	if err := img.Validate(); err != nil {
		log.Fatal(err)
	}
	data, err := img.MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}
	st := img.Summarize()
	fmt.Printf("\nBitstream: %d bytes for %d tiles (%d CC columns, %d BV columns, %d switch dots, %d global dots)\n",
		len(data), st.Tiles, st.CCColumns, st.BVColumns, st.SwitchDots, st.GlobalDots)

	// A loader on the other end parses and re-verifies it.
	back, err := bitstream.Parse(data)
	if err != nil {
		log.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("loader round trip verified ✓")

	// 3. Interchange: export the basic-NFA forms for external tools.
	var mf mnrl.File
	var ad anml.Document
	exported := 0
	for _, p := range ds.Patterns[:5] {
		re, err := regexast.Parse(p)
		if err != nil {
			log.Fatal(err)
		}
		nfa, err := automata.Glushkov(re, 0)
		if err != nil {
			continue
		}
		mf.Networks = append(mf.Networks, mnrl.FromNFA(p, nfa))
		ad.Networks = append(ad.Networks, anml.FromNFA(p, nfa))
		exported++
	}
	var mbuf, abuf bytes.Buffer
	if err := mnrl.Write(&mbuf, &mf); err != nil {
		log.Fatal(err)
	}
	if err := anml.Write(&abuf, &ad); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nInterchange: %d networks -> %d bytes MNRL, %d bytes ANML\n",
		exported, mbuf.Len(), abuf.Len())
}
