// Virus scanning example: ClamAV-style signatures are dominated by large
// bounded repetitions (>80% per Fig 1), the workload NBVA mode exists
// for. This example shows the compression — bit vectors vs unfolded
// states — and the depth tradeoff of Fig 10(a): deeper bit vectors shrink
// the chip but stall longer per triggered symbol.
//
//	go run ./examples/virusscan
package main

import (
	"fmt"
	"log"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	ds := workload.MustGenerate("ClamAV", 0.25, 11)
	stream := ds.Input(100_000, 5)

	res := compile.Compile(ds.Patterns, compile.Options{})
	if len(res.Errors) > 0 {
		log.Fatal(res.Errors[0])
	}
	var steCompressed, steUnfolded, bvBits int
	for _, c := range res.ByMode(compile.ModeNBVA) {
		steCompressed += c.STEs
		steUnfolded += c.UnfoldedSTEs
		bvBits += c.BVBits
	}
	fmt.Printf("Signatures: %d (%.0f%% use bit vectors)\n", len(ds.Patterns),
		100*res.ModeShares()[compile.ModeNBVA])
	fmt.Printf("NBVA compression: %d STEs + %d BV bits instead of %d unfolded states (%.1fx)\n\n",
		steCompressed, bvBits, steUnfolded, float64(steUnfolded)/float64(steCompressed))

	fmt.Println("BV depth tradeoff (Fig 10a): area shrinks, stalls grow")
	fmt.Println("depth  energy(µJ)  area(mm²)  throughput(Gch/s)")
	for _, depth := range []int{4, 8, 16, 32} {
		eng := core.New(core.Config{Depth: depth})
		prog, err := eng.Compile(ds.Patterns)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := eng.Run(prog, stream)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d  %10.2f  %9.4f  %17.3f\n",
			depth, rep.EnergyUJ(), rep.Area.TotalMM2(), rep.ThroughputGchS())
	}

	// The automatic DSE picks the §5.3 sweet spot.
	eng := core.NewDefault()
	depth, _, err := eng.ChooseDepth(ds.Patterns, stream)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDSE-chosen depth for this signature set: %d\n", depth)
}
