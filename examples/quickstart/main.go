// Quickstart: compile a handful of regexes with the RAP engine, stream an
// input through the modeled hardware, and print what the compiler decided
// and what the hardware would cost.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/compile"
	"repro/internal/core"
)

func main() {
	patterns := []string{
		"needle",           // a plain string: Shift-And on the CAM (LNFA mode)
		"na{20,40}b",       // a large bounded repetition: bit vectors (NBVA mode)
		"x(y|z)*w",         // Kleene structure: classical NFA mode
		"GET /[a-z]+ HTTP", // something network-flavored
	}
	input := []byte("haystack with a needle, an n" +
		"aaaaaaaaaaaaaaaaaaaaaaaaab burst, xyzyzw, and GET /index HTTP")

	eng := core.NewDefault()
	prog, err := eng.Compile(patterns)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Compilation (Fig 9 decision graph):")
	for i := range prog.Result.Regexes {
		c := &prog.Result.Regexes[i]
		fmt.Printf("  %-20q -> %-4s  (%d STEs", c.Source, c.Mode, c.STEs)
		if c.Mode == compile.ModeNBVA {
			fmt.Printf(", %d BV bits, %d states if unfolded", c.BVBits, c.UnfoldedSTEs)
		}
		fmt.Println(")")
	}
	fmt.Printf("Placement: %d arrays, %.4f mm²\n\n", len(prog.Placement.Arrays), prog.AreaMM2())

	rep, err := eng.Run(prog, input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Cycle-level simulation:")
	fmt.Printf("  %s\n\n", rep)

	// The same patterns through the pure-software reference matcher.
	matches, err := eng.Match(patterns, input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Software reference matches (pattern -> end offset):")
	for _, m := range matches {
		fmt.Printf("  %q ends at %d\n", patterns[m.Pattern], m.End)
	}
	if int64(len(matches)) == rep.Matches {
		fmt.Println("hardware and software agree ✓")
	}
}
