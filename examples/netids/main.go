// Network intrusion detection example (the paper's motivating workload,
// §1): a Snort-like rule set runs against a synthetic traffic stream on
// RAP and on the CAMA and CA baselines, reporting the energy-efficiency
// and compute-density gaps the paper's Fig 12 quantifies.
//
//	go run ./examples/netids
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	// A Snort-flavored synthetic rule set: content strings, bounded
	// repetitions (header lengths), and general regexes.
	ds := workload.MustGenerate("Snort", 0.5, 7)
	traffic := ds.Input(200_000, 42)
	fmt.Printf("Rule set: %d patterns; traffic: %d bytes\n\n", len(ds.Patterns), len(traffic))

	eng := core.NewDefault()
	prog, err := eng.Compile(ds.Patterns)
	if err != nil {
		log.Fatal(err)
	}
	shares := prog.ModeShares()
	fmt.Printf("Compiler decision shares: %.0f%% NFA, %.0f%% NBVA, %.0f%% LNFA\n\n",
		100*shares[0], 100*shares[1], 100*shares[2])

	rap, err := eng.Run(prog, traffic)
	if err != nil {
		log.Fatal(err)
	}
	reports := []*sim.Report{rap}
	for _, b := range []core.Baseline{core.BaselineCAMA, core.BaselineCA} {
		rep, err := eng.RunBaseline(b, ds.Patterns, traffic)
		if err != nil {
			log.Fatal(err)
		}
		reports = append(reports, rep)
	}
	fmt.Println("Architecture comparison on this rule set:")
	for _, r := range reports {
		fmt.Printf("  %s\n", r)
	}
	fmt.Printf("\nRAP vs CAMA: %.1fx energy efficiency, %.1fx compute density\n",
		rap.EnergyEfficiency()/reports[1].EnergyEfficiency(),
		rap.ComputeDensity()/reports[1].ComputeDensity())
	fmt.Printf("RAP vs CA:   %.1fx energy efficiency, %.1fx compute density\n",
		rap.EnergyEfficiency()/reports[2].EnergyEfficiency(),
		rap.ComputeDensity()/reports[2].ComputeDensity())

	if rap.Matches != reports[1].Matches || rap.Matches != reports[2].Matches {
		log.Fatal("simulators disagree on match count")
	}
	fmt.Printf("\nAll three simulators report %d alerts ✓\n", rap.Matches)
}
