// Package rapclient is the typed Go client for the rapserve /v1 HTTP
// API: compile (Programs), one-shot scans, streaming sessions (Open /
// Feed / Close), live ruleset updates, and the stats/health surface.
//
// The client is deliberately self-contained — it mirrors the wire types
// and the typed-error semantics of the service (*compile.Error-shaped
// ruleset rejections surface as ErrCompile, per-tenant admission
// rejections as ErrOverLimit) without importing any server package, so
// it is what a remote consumer of the API would vendor. The cluster
// proxy (internal/cluster), rapbench's serving experiments, and the
// examples all speak /v1 through it.
//
// Every method takes a context and honors cancellation. Backpressure
// responses (429 with Retry-After, 503) are retried with exponential
// backoff capped by the server-provided Retry-After; transport errors
// are retried only for requests that are safe to repeat (GETs, content-
// hash-keyed compiles, one-shot scans — not session feeds, which advance
// stream state).
package rapclient

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// DefaultTenantHeader is the identity header rapserve reads by default
// (see internal/qos); WithTenant attaches its value to every request.
const DefaultTenantHeader = "X-RAP-Tenant"

// Client talks to one rapserve (or rapcluster) base URL. Clients are
// immutable after New; the With* methods return shallow copies, so one
// Client per backend can be shared across goroutines and re-scoped per
// request (e.g. the cluster proxy stamping the caller's tenant).
type Client struct {
	base    string
	hc      *http.Client
	header  http.Header
	retries int
	backoff time.Duration
	maxWait time.Duration
}

// Option configures a Client at construction.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test servers). Default: http.DefaultClient.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithTenant sets the tenant identity sent on every request.
func WithTenant(name string) Option {
	return func(c *Client) { c.header.Set(DefaultTenantHeader, name) }
}

// WithTenantHeader renames the identity header (rapserve -tenant-header).
// Apply before WithTenant.
func WithTenantHeader(h string) Option {
	return func(c *Client) {
		if v := c.header.Get(DefaultTenantHeader); v != "" {
			c.header.Del(DefaultTenantHeader)
			c.header.Set(h, v)
		}
	}
}

// WithHeader adds a static header to every request (e.g. the cluster
// proxy's forwarded marker).
func WithHeader(key, value string) Option {
	return func(c *Client) { c.header.Set(key, value) }
}

// WithRetries bounds retry attempts after the first try (default 3;
// 0 disables retries entirely).
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithBackoff sets the base retry backoff, doubled per attempt
// (default 50ms) and overridden upward by server Retry-After hints.
func WithBackoff(d time.Duration) Option { return func(c *Client) { c.backoff = d } }

// WithMaxWait caps any single retry sleep, including server-provided
// Retry-After hints (default 2s).
func WithMaxWait(d time.Duration) Option { return func(c *Client) { c.maxWait = d } }

// New returns a client for the service at baseURL (e.g.
// "http://127.0.0.1:8844").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:    strings.TrimRight(baseURL, "/"),
		hc:      http.DefaultClient,
		header:  http.Header{},
		retries: 3,
		backoff: 50 * time.Millisecond,
		maxWait: 2 * time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// BaseURL reports the backend this client targets.
func (c *Client) BaseURL() string { return c.base }

// WithTenant returns a copy of the client scoped to the given tenant —
// the per-request form of the WithTenant option, used by proxies that
// forward many tenants through one backend client.
func (c *Client) WithTenant(name string) *Client {
	cp := *c
	cp.header = c.header.Clone()
	cp.header.Set(DefaultTenantHeader, name)
	return &cp
}

// Compile compiles (or cache-hits) a ruleset and returns its program.
// Safe to retry: program IDs are content hashes, so repeating the
// request converges on the same program.
func (c *Client) Compile(ctx context.Context, patterns []string, opts *CompileOptions) (*Program, error) {
	req := compileRequest{Patterns: patterns}
	if opts != nil {
		req.Options = *opts
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var out Program
	if err := c.do(ctx, http.MethodPost, "/v1/programs", body, jsonContent, true, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Update hot-swaps the ruleset behind a program ID (PUT /v1/programs/
// {id}) and returns the reconfiguration delta report. Not retried on
// transport errors: each apply bumps the program generation.
func (c *Client) Update(ctx context.Context, programID string, patterns []string, opts *CompileOptions) (*UpdateResult, error) {
	req := compileRequest{Patterns: patterns}
	if opts != nil {
		req.Options = *opts
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var out UpdateResult
	if err := c.do(ctx, http.MethodPut, "/v1/programs/"+programID, body, jsonContent, false, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Scan runs a one-shot scan of data against a compiled program.
func (c *Client) Scan(ctx context.Context, programID string, data []byte) (*ScanResult, error) {
	var out ScanResult
	if err := c.do(ctx, http.MethodPost, "/v1/programs/"+programID+"/scan", data, binaryContent, true, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// OpenSession opens a streaming session against a compiled program.
func (c *Client) OpenSession(ctx context.Context, programID string) (*Session, error) {
	body, err := json.Marshal(openSessionRequest{ProgramID: programID})
	if err != nil {
		return nil, err
	}
	var out openSessionResponse
	if err := c.do(ctx, http.MethodPost, "/v1/sessions", body, jsonContent, false, &out); err != nil {
		return nil, err
	}
	return &Session{c: c, ID: out.SessionID, ProgramID: programID}, nil
}

// Session binds an existing session ID to this client — e.g. a session
// opened through a different cluster gateway, or recorded across a
// process restart. programID is informational and may be empty.
func (c *Client) Session(id, programID string) *Session {
	return &Session{c: c, ID: id, ProgramID: programID}
}

// Session is one open streaming session. Feed and Close must not run
// concurrently with each other (the stream is stateful), matching the
// server's per-session flow serialization.
type Session struct {
	c         *Client
	ID        string
	ProgramID string
}

// Feed streams the next chunk and returns the matches ending inside it.
// Not retried on transport errors: a chunk that may have been consumed
// must not be double-fed.
func (s *Session) Feed(ctx context.Context, chunk []byte) (*FeedResult, error) {
	var out FeedResult
	if err := s.c.do(ctx, http.MethodPost, "/v1/sessions/"+s.ID+"/data", chunk, binaryContent, false, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Close ends the stream, returning end-anchored matches and totals.
func (s *Session) Close(ctx context.Context) (*CloseResult, error) {
	var out CloseResult
	if err := s.c.do(ctx, http.MethodDelete, "/v1/sessions/"+s.ID, nil, "", false, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats fetches the /v1/stats counter snapshot. The mirrored struct
// keeps the fields control loops route on (traffic totals, SLO burn
// rates, health, per-program counters); unrecognized blocks are ignored.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var out Stats
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, "", true, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health fetches the scored component health from /v1/health.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	var out Health
	if err := c.do(ctx, http.MethodGet, "/v1/health", nil, "", true, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Ready probes /readyz: nil when the node accepts traffic, ErrUnavailable
// (wrapped in an *APIError) while any health component is critical.
func (c *Client) Ready(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/readyz", nil, "", true, nil)
}

const (
	jsonContent   = "application/json"
	binaryContent = "application/octet-stream"
)

// do issues one API request with the retry policy: 429/503 responses
// are always retried (the server rejected before any side effect) after
// honoring Retry-After; transport errors are retried only when
// idempotent. Other non-2xx statuses return a typed *APIError.
func (c *Client) do(ctx context.Context, method, path string, body []byte, contentType string, idempotent bool, out any) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		for k, vs := range c.header {
			for _, v := range vs {
				req.Header.Add(k, v)
			}
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = fmt.Errorf("rapclient: %s %s: %w", method, path, err)
			if !idempotent || attempt >= c.retries {
				return lastErr
			}
			if err := c.sleep(ctx, c.backoffFor(attempt, 0)); err != nil {
				return err
			}
			continue
		}
		apiErr, retryable := c.consume(resp, out)
		if apiErr == nil {
			return nil
		}
		lastErr = apiErr
		if !retryable || attempt >= c.retries {
			return lastErr
		}
		if err := c.sleep(ctx, c.backoffFor(attempt, apiErr.RetryAfter)); err != nil {
			return err
		}
	}
}

// consume reads one response: on 2xx it decodes into out (when non-nil)
// and returns (nil, false); otherwise it builds the typed error and
// reports whether the status is a retryable backpressure signal.
func (c *Client) consume(resp *http.Response, out any) (*APIError, bool) {
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				return &APIError{Status: resp.StatusCode, Message: fmt.Sprintf("decode response: %v", err)}, false
			}
		}
		return nil, false
	}
	apiErr := &APIError{Status: resp.StatusCode, RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After"))}
	var wire errorResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&wire); err == nil && wire.Error != "" {
		apiErr.Message = wire.Error
	} else {
		apiErr.Message = http.StatusText(resp.StatusCode)
	}
	retryable := resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable
	return apiErr, retryable
}

// backoffFor picks the next sleep: exponential from the base, overridden
// upward by a server Retry-After hint, capped at maxWait.
func (c *Client) backoffFor(attempt int, retryAfter time.Duration) time.Duration {
	d := c.backoff << attempt
	if retryAfter > d {
		d = retryAfter
	}
	if d > c.maxWait {
		d = c.maxWait
	}
	return d
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// parseRetryAfter handles both Retry-After forms: delta-seconds and
// HTTP-date. Unparseable values yield 0 (fall back to backoff).
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if when, err := http.ParseTime(v); err == nil {
		if d := time.Until(when); d > 0 {
			return d
		}
	}
	return 0
}
