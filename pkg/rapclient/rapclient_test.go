package rapclient_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
	"repro/pkg/rapclient"
)

// TestRoundTrip drives the full typed surface against a real service:
// compile → scan → session open/feed/close → update → stats/health.
// This is the wire-contract pin: if a server-side JSON shape drifts,
// the mirrored client types stop round-tripping here.
func TestRoundTrip(t *testing.T) {
	svc := service.New(service.Config{Workers: 2})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	cl := rapclient.New(srv.URL, rapclient.WithTenant("acme"))
	ctx := context.Background()

	prog, err := cl.Compile(ctx, []string{"cat", "dog"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if prog.ID == "" || prog.NumPatterns != 2 {
		t.Fatalf("compile response = %+v", prog)
	}
	again, err := cl.Compile(ctx, []string{"cat", "dog"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit || again.ID != prog.ID {
		t.Fatalf("second compile = %+v, want cache hit on %s", again, prog.ID)
	}

	scan, err := cl.Scan(ctx, prog.ID, []byte("the cat saw a dog"))
	if err != nil {
		t.Fatal(err)
	}
	if scan.Count != 2 || len(scan.Matches) != 2 {
		t.Fatalf("scan = %+v, want 2 matches", scan)
	}

	sess, err := cl.OpenSession(ctx, prog.ID)
	if err != nil {
		t.Fatal(err)
	}
	fed, err := sess.Feed(ctx, []byte("ca"))
	if err != nil {
		t.Fatal(err)
	}
	if fed.Count != 0 || fed.Offset != 2 {
		t.Fatalf("feed 1 = %+v", fed)
	}
	fed, err = sess.Feed(ctx, []byte("t and dog"))
	if err != nil {
		t.Fatal(err)
	}
	if fed.Count != 2 {
		t.Fatalf("feed 2 = %+v, want the cross-chunk cat plus dog", fed)
	}
	closed, err := sess.Close(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if closed.Summary.Bytes != 11 || closed.Summary.Chunks != 2 || closed.Summary.Matches != 2 {
		t.Fatalf("close summary = %+v", closed.Summary)
	}

	upd, err := cl.Update(ctx, prog.ID, []string{"bird"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if upd.Generation != 1 || upd.DeltaBytes <= 0 {
		t.Fatalf("update = %+v", upd)
	}

	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Scans < 3 || len(st.Programs) == 0 || len(st.SLO.Objectives) == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if _, ok := st.Objective("request_latency"); !ok {
		t.Error("stats missing request_latency objective")
	}
	h, err := cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status == "" || len(h.Components) == 0 {
		t.Fatalf("health = %+v", h)
	}
	if err := cl.Ready(ctx); err != nil {
		t.Fatalf("ready: %v", err)
	}
}

// TestTypedErrors pins the sentinel mapping for real service responses.
func TestTypedErrors(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	cl := rapclient.New(srv.URL, rapclient.WithRetries(0))
	ctx := context.Background()

	if _, err := cl.Scan(ctx, "nope", []byte("x")); !errors.Is(err, rapclient.ErrNotFound) {
		t.Errorf("scan unknown program: %v, want ErrNotFound", err)
	}
	if _, err := cl.Compile(ctx, []string{"("}, nil); !errors.Is(err, rapclient.ErrCompile) {
		t.Errorf("bad pattern: %v, want ErrCompile", err)
	}
	if _, err := cl.Compile(ctx, nil, &rapclient.CompileOptions{ModePolicy: "bogus"}); !errors.Is(err, rapclient.ErrCompile) {
		t.Errorf("bad options: %v, want ErrCompile", err)
	}
	var apiErr *rapclient.APIError
	_, err := cl.Scan(ctx, "nope", nil)
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound || apiErr.Message == "" {
		t.Errorf("APIError = %+v", apiErr)
	}
}

// TestRetryAfterBackoff: 429s are retried after honoring Retry-After,
// and the hint surfaces through RetryAfterOf when retries run out.
func TestRetryAfterBackoff(t *testing.T) {
	var calls atomic.Int64
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"tenant over limit"}`))
			return
		}
		w.Write([]byte(`{"count":0,"matches":[]}`))
	}))
	defer stub.Close()

	// maxWait caps the server's 1s hint so the test stays fast.
	cl := rapclient.New(stub.URL, rapclient.WithRetries(3), rapclient.WithMaxWait(20*time.Millisecond))
	start := time.Now()
	if _, err := cl.Scan(context.Background(), "p", []byte("x")); err != nil {
		t.Fatalf("scan after retries: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server calls = %d, want 3", got)
	}
	if waited := time.Since(start); waited < 40*time.Millisecond {
		t.Errorf("retries waited %v, want >= 2 capped Retry-After sleeps", waited)
	}

	// Retries exhausted: the typed error carries the hint.
	calls.Store(-100)
	_, err := cl.Scan(context.Background(), "p", []byte("x"))
	if !errors.Is(err, rapclient.ErrOverLimit) {
		t.Fatalf("exhausted retries: %v, want ErrOverLimit", err)
	}
	if ra, ok := rapclient.RetryAfterOf(err); !ok || ra != time.Second {
		t.Errorf("RetryAfterOf = %v %v, want 1s true", ra, ok)
	}
}

// TestContextCancel: a canceled context aborts the retry sleep.
func TestContextCancel(t *testing.T) {
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer stub.Close()
	cl := rapclient.New(stub.URL, rapclient.WithRetries(5), rapclient.WithMaxWait(time.Minute))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := cl.Scan(ctx, "p", nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation did not interrupt the retry sleep")
	}
}

// TestTenantScoping: WithTenant (option and per-call copy) stamps the
// identity header the server's QoS layer reads.
func TestTenantScoping(t *testing.T) {
	var seen atomic.Value
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen.Store(r.Header.Get("X-RAP-Tenant"))
		w.Write([]byte(`{"count":0,"matches":[]}`))
	}))
	defer stub.Close()
	cl := rapclient.New(stub.URL, rapclient.WithTenant("base"))
	if _, err := cl.Scan(context.Background(), "p", nil); err != nil {
		t.Fatal(err)
	}
	if got := seen.Load(); got != "base" {
		t.Errorf("tenant = %v, want base", got)
	}
	if _, err := cl.WithTenant("override").Scan(context.Background(), "p", nil); err != nil {
		t.Fatal(err)
	}
	if got := seen.Load(); got != "override" {
		t.Errorf("tenant = %v, want override", got)
	}
	// The copy must not mutate the original.
	if _, err := cl.Scan(context.Background(), "p", nil); err != nil {
		t.Fatal(err)
	}
	if got := seen.Load(); got != "base" {
		t.Errorf("tenant after copy = %v, want base", got)
	}
}
