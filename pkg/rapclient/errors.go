package rapclient

import (
	"errors"
	"fmt"
	"net/http"
	"time"
)

// Sentinel errors mirroring the service's typed-error surface. Match
// with errors.Is against any error returned by a Client method:
//
//	_, err := cl.Scan(ctx, id, data)
//	switch {
//	case errors.Is(err, rapclient.ErrNotFound):   // unknown program/session
//	case errors.Is(err, rapclient.ErrOverLimit):  // 429 after retries; see RetryAfter
//	case errors.Is(err, rapclient.ErrCompile):    // ruleset rejected (bad pattern/options)
//	case errors.Is(err, rapclient.ErrUnavailable) // node closed or not ready
//	}
var (
	// ErrNotFound mirrors service.ErrNotFound: unknown program or
	// session ID (HTTP 404).
	ErrNotFound = errors.New("rapclient: not found")
	// ErrOverLimit mirrors qos.ErrOverLimit: per-tenant admission or
	// backpressure rejection (HTTP 429). The wrapped *APIError carries
	// the server's Retry-After.
	ErrOverLimit = errors.New("rapclient: over limit")
	// ErrCompile mirrors *compile.Error / refmatch.*PatternError: the
	// ruleset (or its options) was rejected (HTTP 400). The *APIError
	// message carries the server's diagnostic chain.
	ErrCompile = errors.New("rapclient: ruleset rejected")
	// ErrUnavailable reports a node that cannot take traffic: closed
	// (HTTP 503) or failing its readiness probe.
	ErrUnavailable = errors.New("rapclient: service unavailable")
)

// APIError is the typed form of every non-2xx API response. It wraps
// the matching sentinel (errors.Is works through it) and keeps the raw
// status, the server's error message, and any Retry-After hint.
type APIError struct {
	Status     int
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("rapclient: HTTP %d: %s", e.Status, e.Message)
}

// Is maps the response status onto the sentinel errors.
func (e *APIError) Is(target error) bool {
	switch target {
	case ErrNotFound:
		return e.Status == http.StatusNotFound
	case ErrOverLimit:
		return e.Status == http.StatusTooManyRequests
	case ErrCompile:
		return e.Status == http.StatusBadRequest
	case ErrUnavailable:
		return e.Status == http.StatusServiceUnavailable
	}
	return false
}

// RetryAfterOf extracts the server's Retry-After hint from any error
// returned by this package (0, false when absent) — the client-side
// mirror of qos.RetryAfterOf.
func RetryAfterOf(err error) (time.Duration, bool) {
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.RetryAfter > 0 {
		return apiErr.RetryAfter, true
	}
	return 0, false
}
