package rapclient

// Wire types mirroring the /v1 API. They deliberately duplicate the
// server's JSON shapes (internal/service) rather than import them, so
// the client stays dependency-free and pins the wire contract: a field
// rename server-side is a breaking change this package's round-trip
// test catches.

// CompileOptions is the /v1 compile options block (see the service's
// CompileOptions). The zero value means server defaults.
type CompileOptions struct {
	LinearBudgetFactor int  `json:"linear_budget_factor,omitempty"`
	UnfoldThreshold    int  `json:"unfold_threshold,omitempty"`
	MaxNFAStates       int  `json:"max_nfa_states,omitempty"`
	DFAStateCap        int  `json:"dfa_state_cap,omitempty"`
	DisablePrefilter   bool `json:"disable_prefilter,omitempty"`
	SFAStateCap        int  `json:"sfa_state_cap,omitempty"`
	// ModePolicy selects the open engine routes: "" or "all" (default)
	// or "force_nfa" (the paper's NFA mode).
	ModePolicy string `json:"mode_policy,omitempty"`
}

type compileRequest struct {
	Patterns []string       `json:"patterns"`
	Options  CompileOptions `json:"options"`
}

// Program is the compile response: the content-hash program ID plus the
// engine breakdown of the compiled ruleset.
type Program struct {
	ID          string         `json:"program_id"`
	CacheHit    bool           `json:"cache_hit"`
	NumPatterns int            `json:"num_patterns"`
	Engines     map[string]int `json:"engines"`
}

// Match is one reported match: the pattern index within the program's
// ruleset and the end offset (exclusive) in the scanned stream.
type Match struct {
	Pattern int `json:"pattern"`
	End     int `json:"end"`
}

// ScanResult is the one-shot scan response.
type ScanResult struct {
	Count   int     `json:"count"`
	Matches []Match `json:"matches"`
}

type openSessionRequest struct {
	ProgramID string `json:"program_id"`
}

type openSessionResponse struct {
	SessionID string `json:"session_id"`
}

// FeedResult is one streamed chunk's response: matches ending inside the
// chunk (stream offsets) and the total stream position consumed so far.
type FeedResult struct {
	Count   int     `json:"count"`
	Offset  int     `json:"offset"`
	Matches []Match `json:"matches"`
}

// SessionSummary is the totals block of a closed session.
type SessionSummary struct {
	SessionID             string `json:"session_id"`
	ProgramID             string `json:"program_id"`
	Bytes                 int64  `json:"bytes"`
	Chunks                int64  `json:"chunks"`
	Matches               int64  `json:"matches"`
	PrefilterScannedBytes int64  `json:"prefilter_scanned_bytes,omitempty"`
	PrefilterSkippedBytes int64  `json:"prefilter_skipped_bytes,omitempty"`
}

// CloseResult is the DELETE /v1/sessions/{id} response: end-anchored
// matches that fired at the final byte plus the session summary.
type CloseResult struct {
	Count   int            `json:"count"`
	Matches []Match        `json:"matches"`
	Summary SessionSummary `json:"summary"`
}

// UpdateResult is the live ruleset hot-swap report: the reconfiguration
// delta the fabric would load and its modeled cost.
type UpdateResult struct {
	ProgramID   string `json:"program_id"`
	Generation  int64  `json:"generation"`
	NumPatterns int    `json:"num_patterns"`

	DeltaBytes     int `json:"delta_bytes"`
	FullImageBytes int `json:"full_image_bytes"`
	DeltaRecords   int `json:"delta_records"`

	ArraysTouched   int `json:"arrays_touched"`
	ArraysUntouched int `json:"arrays_untouched"`

	ReloadCycles     int64   `json:"reload_cycles"`
	FullReloadCycles int64   `json:"full_reload_cycles"`
	StallCycles      int64   `json:"stall_cycles"`
	EnergyPJ         float64 `json:"energy_pj"`
	ModelLatencyUS   float64 `json:"model_latency_us"`
}

// ObjectiveStatus is one SLO objective's burn evaluation, as served in
// the /v1/stats slo block.
type ObjectiveStatus struct {
	Name      string  `json:"name"`
	Tenant    string  `json:"tenant,omitempty"`
	Kind      string  `json:"kind"`
	Target    float64 `json:"target"`
	FastBurn  float64 `json:"fast_burn"`
	FastLimit float64 `json:"fast_limit"`
	SlowBurn  float64 `json:"slow_burn"`
	SlowLimit float64 `json:"slow_limit"`
	State     string  `json:"state"`
}

// SLOStats is the /v1/stats slo block.
type SLOStats struct {
	Objectives       []ObjectiveStatus `json:"objectives"`
	BreachesTotal    int64             `json:"breaches_total"`
	AdmissionEnabled bool              `json:"admission_enabled"`
	ShedLevel        float64           `json:"shed_level"`
}

// HealthComponent is one scored health dimension.
type HealthComponent struct {
	Name  string  `json:"name"`
	Score float64 `json:"score"`
	State string  `json:"state"`
}

// Health is the /v1/health body (also embedded in /v1/stats): the
// overall node score is the minimum component score.
type Health struct {
	Status     string            `json:"status"`
	Score      float64           `json:"score"`
	Components []HealthComponent `json:"components,omitempty"`
}

// SessionCounts is the /v1/stats session-table block.
type SessionCounts struct {
	Open   int64 `json:"open"`
	Opened int64 `json:"opened"`
	Closed int64 `json:"closed"`
}

// ProgramStats is one cached program's counters in /v1/stats.
type ProgramStats struct {
	ID          string `json:"id"`
	NumPatterns int    `json:"num_patterns"`
	Generation  int64  `json:"generation"`
	Scans       int64  `json:"scans"`
	Bytes       int64  `json:"bytes"`
	Matches     int64  `json:"matches"`
	Sessions    int64  `json:"sessions"`
}

// Stats mirrors the /v1/stats blocks a remote control loop routes on
// (the cluster's canary watcher and load balancer, dashboards).
// Blocks this struct does not name are ignored on decode.
type Stats struct {
	UptimeSeconds float64        `json:"uptime_seconds"`
	Scans         int64          `json:"scans"`
	ScanBytes     int64          `json:"scan_bytes"`
	ScanMatches   int64          `json:"scan_matches"`
	Sessions      SessionCounts  `json:"sessions"`
	SLO           SLOStats       `json:"slo"`
	Health        Health         `json:"health"`
	Programs      []ProgramStats `json:"programs"`
}

// Objective returns the named objective's status (tenant-less series)
// from the slo block, or false when the server does not track it.
func (s *Stats) Objective(name string) (ObjectiveStatus, bool) {
	for _, o := range s.SLO.Objectives {
		if o.Name == name && o.Tenant == "" {
			return o, true
		}
	}
	return ObjectiveStatus{}, false
}

type errorResponse struct {
	Error string `json:"error"`
}
