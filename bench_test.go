// Package repro's root benchmark suite regenerates every table and figure
// of the paper's evaluation (§5) as testing.B benchmarks — one per
// experiment — printing the same rows the paper reports and timing a full
// regeneration. Run with:
//
//	go test -bench=. -benchmem
//
// Benchmarks use a reduced scale (BenchScale / BenchInput below) so the
// whole suite finishes in minutes; cmd/rapbench runs the full scale.
package repro

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/service"
	"repro/internal/workload"
)

const (
	benchScale = 0.2
	benchInput = 10000
	benchSeed  = 1
)

func benchConfig() experiments.Config {
	return experiments.Config{Scale: benchScale, Seed: benchSeed, InputLen: benchInput}
}

// printOnce prints each experiment's table a single time across bench
// iterations so -bench output stays readable.
var printOnce sync.Map

func runExperiment(b *testing.B, name string) {
	b.Helper()
	var last *metrics.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.Run(name, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	if _, done := printOnce.LoadOrStore(name, true); !done && last != nil {
		fmt.Printf("\n%s\n", last.String())
	}
	b.ReportMetric(float64(len(last.Rows)), "rows")
}

// BenchmarkFig1 regenerates Figure 1 (regex model proportions per
// benchmark).
func BenchmarkFig1(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFig10a regenerates Figure 10(a) (NBVA depth design-space
// exploration).
func BenchmarkFig10a(b *testing.B) { runExperiment(b, "fig10a") }

// BenchmarkFig10b regenerates Figure 10(b) (LNFA bin-size design-space
// exploration).
func BenchmarkFig10b(b *testing.B) { runExperiment(b, "fig10b") }

// BenchmarkTable2 regenerates Table 2 (NBVA mode of RAP vs NFA mode,
// CAMA, BVAP and CA).
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkTable3 regenerates Table 3 (LNFA mode of RAP vs NFA mode,
// CAMA, BVAP and CA).
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkFig11 regenerates Figure 11 (per-mode share of STEs, energy
// and area).
func BenchmarkFig11(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12 regenerates Figure 12 (overall comparison of RAP against
// BVAP, CAMA and CA).
func BenchmarkFig12(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkFig13 regenerates Figure 13 (RAP vs GPU and CPU solutions;
// the CPU column measures the in-repo software matcher on this host).
func BenchmarkFig13(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkTable4 regenerates Table 4 (RAP vs the hAP FPGA design on
// ANMLZoo).
func BenchmarkTable4(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkAblation runs the extra ablations (buffering models, mode
// removal, unfolding-threshold sweep) that quantify DESIGN.md's design
// choices beyond the paper's own DSE.
func BenchmarkAblation(b *testing.B) { runExperiment(b, "ablation") }

// BenchmarkFlows runs the flow-multiplexing context-switch analysis (the
// cost of relaxing the paper's single-flow assumption).
func BenchmarkFlows(b *testing.B) { runExperiment(b, "flows") }

// BenchmarkServiceScan measures one-shot scan throughput through the
// serving layer (program cache lookup + worker-pool dispatch + metrics)
// against calling refmatch.Scan directly on the same compiled matcher,
// so the service overhead per scan is visible. Parallel to exercise the
// sharded pool the way concurrent HTTP handlers would.
func BenchmarkServiceScan(b *testing.B) {
	d, err := workload.Generate("Snort", benchScale, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	input := d.Input(benchInput, benchSeed+100)

	svc := service.New(service.Config{})
	defer svc.Close()
	prog, _, err := svc.Compile(context.Background(), d.Patterns, service.CompileOptions{})
	if err != nil {
		b.Fatal(err)
	}

	b.Run("service", func(b *testing.B) {
		b.SetBytes(int64(len(input)))
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := svc.Scan(context.Background(), prog.ID, input); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
	b.Run("direct", func(b *testing.B) {
		b.SetBytes(int64(len(input)))
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				prog.Matcher.Scan(input)
			}
		})
	})
}
